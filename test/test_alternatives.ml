(* Tests for the alternative modules: synthesis/PCR wetlab stages,
   constrained coding, the fountain codec, Clover clustering and the
   LDPC code. *)

let rng () = Dna.Rng.create 60221023

(* ---------- synthesis ---------- *)

let test_synthesis_perfect_coupling () =
  let r = rng () in
  let p = { Simulator.Synthesis.default_params with coupling_efficiency = 1.0; p_sub = 0.0 } in
  let designs = Array.init 5 (fun _ -> Dna.Strand.random r 60) in
  let pool = Simulator.Synthesis.synthesize ~params:p r designs in
  Alcotest.(check int) "all full length copies" (5 * p.Simulator.Synthesis.copies)
    (Array.length pool);
  Array.iter
    (fun m -> Alcotest.(check bool) "is a design" true (Array.exists (Dna.Strand.equal m) designs))
    pool

let test_synthesis_truncation () =
  let r = rng () in
  let p =
    { Simulator.Synthesis.default_params with coupling_efficiency = 0.97; keep_truncated = 1.0 }
  in
  let designs = [| Dna.Strand.random r 150 |] in
  let pool = Simulator.Synthesis.synthesize ~params:p r designs in
  let truncated = Array.to_list pool |> List.filter (fun m -> Dna.Strand.length m < 150) in
  Alcotest.(check bool) "truncated products exist" true (List.length truncated > 0);
  List.iter
    (fun m ->
      (* Each truncated product is a prefix of the design (up to subs). *)
      Alcotest.(check bool) "is a prefix length" true (Dna.Strand.length m <= 150))
    truncated

let test_synthesis_yield_formula () =
  let p = Simulator.Synthesis.default_params in
  let y = Simulator.Synthesis.full_length_yield p ~len:100 in
  Alcotest.(check bool) "0.99^100 ~ 0.366" true (abs_float (y -. 0.366) < 0.01)

let test_synthesis_channel_nonempty () =
  let r = rng () in
  let ch = Simulator.Synthesis.channel () in
  for _ = 1 to 20 do
    let s = Dna.Strand.random r 80 in
    Alcotest.(check bool) "nonempty read" true
      (Dna.Strand.length (Simulator.Channel.transmit ch r s) > 0)
  done

(* ---------- pcr ---------- *)

let test_pcr_growth () =
  let r = rng () in
  let molecules = Array.init 10 (fun _ -> Dna.Strand.random r 60) in
  let pop = Simulator.Pcr.amplify r molecules in
  let total = Simulator.Pcr.total_molecules pop in
  (* 12 cycles at 85% efficiency: about 10 * 1.85^12 = 16k molecules. *)
  Alcotest.(check bool) (Printf.sprintf "exponential growth (%d)" total) true (total > 2000);
  Alcotest.(check bool) "bounded" true (total < 100_000)

let test_pcr_no_cycles_identity () =
  let r = rng () in
  let molecules = Array.init 5 (fun _ -> Dna.Strand.random r 40) in
  let pop = Simulator.Pcr.amplify ~params:{ Simulator.Pcr.default_params with cycles = 0 } r molecules in
  Alcotest.(check int) "unchanged count" 5 (Simulator.Pcr.total_molecules pop)

let test_pcr_errors_create_variants () =
  let r = rng () in
  let molecules = [| Dna.Strand.random r 200 |] in
  let params = { Simulator.Pcr.default_params with cycles = 14; p_sub = 1e-3 } in
  let pop = Simulator.Pcr.amplify ~params r molecules in
  Alcotest.(check bool) "mutant variants appeared" true (List.length pop > 1);
  (* All variants stay within small Hamming distance of the original. *)
  List.iter
    (fun (s, _) ->
      Alcotest.(check int) "length preserved" 200 (Dna.Strand.length s))
    pop

let test_pcr_sample_proportional () =
  let r = rng () in
  let a = Dna.Strand.of_string "AAAA" and b = Dna.Strand.of_string "CCCC" in
  let pop = [ (a, 900); (b, 100) ] in
  let sampled = Simulator.Pcr.sample r pop ~n:2000 in
  let n_a = Array.to_list sampled |> List.filter (Dna.Strand.equal a) |> List.length in
  Alcotest.(check bool)
    (Printf.sprintf "a sampled ~90%% (%d/2000)" n_a)
    true
    (n_a > 1700 && n_a < 1900)

let test_pcr_skew_grows () =
  let r = rng () in
  let molecules = Array.init 50 (fun _ -> Dna.Strand.random r 60) in
  let short = Simulator.Pcr.amplify ~params:{ Simulator.Pcr.default_params with cycles = 2 } r molecules in
  let long = Simulator.Pcr.amplify ~params:{ Simulator.Pcr.default_params with cycles = 16 } r molecules in
  Alcotest.(check bool) "amplification bias accumulates" true
    (Simulator.Pcr.abundance_skew long > Simulator.Pcr.abundance_skew short)

(* ---------- constrained coding ---------- *)

let test_constrained_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = Dna.Rng.int r 200 in
    let data = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let s = Codec.Constrained.encode data in
    match Codec.Constrained.decode ~n_bytes:n s with
    | Ok decoded -> Alcotest.(check bytes) "roundtrip" data decoded
    | Error e -> Alcotest.fail (Codec.Constrained.error_message e)
  done

let test_constrained_no_homopolymers () =
  let r = rng () in
  for _ = 1 to 50 do
    let data = Bytes.init (30 + Dna.Rng.int r 100) (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    Alcotest.(check bool) "constraint holds" true
      (Codec.Constrained.satisfies_constraint (Codec.Constrained.encode data))
  done;
  (* even on pathological input *)
  Alcotest.(check bool) "all-zero input" true
    (Codec.Constrained.satisfies_constraint (Codec.Constrained.encode (Bytes.make 120 '\000')))

let test_constrained_density () =
  Alcotest.(check (float 1e-9)) "1.5 bits per nt" 1.5 Codec.Constrained.bits_per_nt;
  Alcotest.(check int) "3 bytes -> 16 nt" 16 (Codec.Constrained.encoded_length 3);
  Alcotest.(check int) "4 bytes -> 32 nt" 32 (Codec.Constrained.encoded_length 4)

let test_constrained_detects_repeat () =
  let data = Bytes.of_string "abcdef" in
  let s = Codec.Constrained.encode data in
  (* Force a repeated base: copy base 0 onto base 1. *)
  let codes = Dna.Strand.to_codes s in
  codes.(1) <- codes.(0);
  match Codec.Constrained.decode ~n_bytes:6 (Dna.Strand.of_codes codes) with
  | Error (Codec.Constrained.Repeated_base _) -> ()
  | Error e -> Alcotest.fail (Codec.Constrained.error_message e)
  | Ok _ -> Alcotest.fail "repeated base accepted"

(* ---------- fountain ---------- *)

let test_fountain_roundtrip () =
  let r = rng () in
  List.iter
    (fun size ->
      let file = Bytes.init size (fun _ -> Char.chr (Dna.Rng.int r 256)) in
      let enc = Codec.Fountain.encode r file in
      match
        Codec.Fountain.decode ~k:enc.Codec.Fountain.k ~file_bytes:enc.file_bytes
          (Array.to_list enc.Codec.Fountain.strands)
      with
      | Ok (out, _) -> Alcotest.(check bytes) (Printf.sprintf "size %d" size) file out
      | Error e -> Alcotest.fail e)
    [ 1; 100; 1000; 3000 ]

let test_fountain_survives_droplet_loss () =
  let r = rng () in
  let file = Bytes.init 1500 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let ok = ref 0 and trials = 10 in
  for _ = 1 to trials do
    let enc = Codec.Fountain.encode r file in
    let survivors =
      Array.to_list enc.Codec.Fountain.strands |> List.filteri (fun i _ -> i mod 5 <> 0)
    in
    match Codec.Fountain.decode ~k:enc.Codec.Fountain.k ~file_bytes:enc.file_bytes survivors with
    | Ok (out, _) when Bytes.equal out file -> incr ok
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "20%% loss tolerated (%d/%d)" !ok trials) true (!ok >= 8)

let test_fountain_rejects_garbage_droplets () =
  let r = rng () in
  let file = Bytes.init 800 (fun _ -> Char.chr (Dna.Rng.int r 256)) in
  let enc = Codec.Fountain.encode r file in
  let garbage =
    List.init 10 (fun _ -> Dna.Strand.random r (Codec.Fountain.strand_nt enc.Codec.Fountain.params))
  in
  match
    Codec.Fountain.decode ~k:enc.Codec.Fountain.k ~file_bytes:enc.file_bytes
      (garbage @ Array.to_list enc.Codec.Fountain.strands)
  with
  | Ok (out, stats) ->
      Alcotest.(check bytes) "decoded despite garbage" file out;
      Alcotest.(check bool) "most garbage rejected by seed checksum" true
        (stats.Codec.Fountain.droplets_bad >= 8)
  | Error e -> Alcotest.fail e

let test_fountain_seed_roundtrip () =
  for v = 0 to 1000 do
    let v = v * 65521 land Codec.Codec_seed.max_value in
    match Codec.Codec_seed.decode32 (Codec.Codec_seed.encode32 v) with
    | Some v' -> Alcotest.(check int) "seed roundtrip" v v'
    | None -> Alcotest.fail "clean seed rejected"
  done

let test_fountain_soliton_normalized () =
  List.iter
    (fun k ->
      let dist = Codec.Fountain.robust_soliton ~k ~c:0.1 ~delta:0.05 in
      let sum = Array.fold_left ( +. ) 0.0 dist in
      Alcotest.(check bool) "normalized" true (abs_float (sum -. 1.0) < 1e-9);
      Array.iter (fun p -> Alcotest.(check bool) "nonnegative" true (p >= 0.0)) dist)
    [ 2; 10; 67; 500 ]

(* ---------- clover ---------- *)

let test_clover_noiseless () =
  let r = rng () in
  let strands = Array.init 40 (fun _ -> Dna.Strand.random r 100) in
  let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 6) in
  let reads = Simulator.Sequencer.sequence sp Simulator.Channel.noiseless r strands in
  let rs = Array.map (fun rd -> rd.Simulator.Sequencer.seq) reads in
  let truth = Array.map (fun rd -> rd.Simulator.Sequencer.origin) reads in
  let result = Clustering.Clover.run rs in
  Alcotest.(check (float 0.001)) "exact on noiseless" 1.0
    (Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters)

let test_clover_low_noise () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.02 in
  let strands = Array.init 60 (fun _ -> Dna.Strand.random r 110) in
  let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 8) in
  let reads = Simulator.Sequencer.sequence sp ch r strands in
  let rs = Array.map (fun rd -> rd.Simulator.Sequencer.seq) reads in
  let truth = Array.map (fun rd -> rd.Simulator.Sequencer.origin) reads in
  let result = Clustering.Clover.run rs in
  let purity = Clustering.Metrics.purity ~truth result.Clustering.Cluster.clusters in
  Alcotest.(check bool) (Printf.sprintf "high purity (%.3f)" purity) true (purity >= 0.95)

let test_clover_partitions_reads () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.05 in
  let strands = Array.init 20 (fun _ -> Dna.Strand.random r 90) in
  let sp = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 5) in
  let reads = Simulator.Sequencer.sequence sp ch r strands in
  let rs = Array.map (fun rd -> rd.Simulator.Sequencer.seq) reads in
  let result = Clustering.Clover.run rs in
  let total =
    List.fold_left (fun acc c -> acc + Array.length c) 0 result.Clustering.Cluster.clusters
  in
  Alcotest.(check int) "every read assigned exactly once" (Array.length rs) total

(* ---------- ldpc ---------- *)

let test_ldpc_encode_valid () =
  let r = rng () in
  let code = Rs.Ldpc.create ~k:96 ~m:48 () in
  for _ = 1 to 20 do
    let info = Array.init 96 (fun _ -> Dna.Rng.bool r) in
    let cw = Rs.Ldpc.encode code info in
    Alcotest.(check bool) "valid codeword" true (Rs.Ldpc.syndrome_ok code cw);
    Alcotest.(check bool) "systematic" true (Array.sub cw 0 96 = info)
  done

let test_ldpc_clean_decode () =
  let r = rng () in
  let code = Rs.Ldpc.create ~k:96 ~m:48 () in
  let info = Array.init 96 (fun _ -> Dna.Rng.bool r) in
  let cw = Rs.Ldpc.encode code info in
  match Rs.Ldpc.decode code (Rs.Ldpc.llr_bsc ~p:0.02 cw) with
  | Ok out -> Alcotest.(check bool) "identity" true (out = info)
  | Error e -> Alcotest.fail e

let test_ldpc_corrects_bsc () =
  let r = rng () in
  let code = Rs.Ldpc.create ~k:960 ~m:480 () in
  let info = Array.init 960 (fun _ -> Dna.Rng.bool r) in
  let cw = Rs.Ldpc.encode code info in
  let ok = ref 0 and trials = 10 in
  for _ = 1 to trials do
    let noisy = Array.map (fun b -> if Dna.Rng.float r < 0.015 then not b else b) cw in
    match Rs.Ldpc.decode code (Rs.Ldpc.llr_bsc ~p:0.015 noisy) with
    | Ok out when out = info -> incr ok
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "1.5%% BSC corrected (%d/%d)" !ok trials) true (!ok >= 9)

let test_ldpc_corrects_erasures () =
  let r = rng () in
  let code = Rs.Ldpc.create ~k:960 ~m:480 () in
  let info = Array.init 960 (fun _ -> Dna.Rng.bool r) in
  let cw = Rs.Ldpc.encode code info in
  let ok = ref 0 and trials = 10 in
  for _ = 1 to trials do
    let noisy = Array.map (fun b -> if Dna.Rng.float r < 0.15 then None else Some b) cw in
    match Rs.Ldpc.decode code (Rs.Ldpc.llr_erasure noisy) with
    | Ok out when out = info -> incr ok
    | _ -> ()
  done;
  Alcotest.(check bool) (Printf.sprintf "15%% erasures corrected (%d/%d)" !ok trials) true (!ok >= 9)

let test_ldpc_overload_reported () =
  let r = rng () in
  let code = Rs.Ldpc.create ~k:960 ~m:480 () in
  let info = Array.init 960 (fun _ -> Dna.Rng.bool r) in
  let cw = Rs.Ldpc.encode code info in
  let miscorrect = ref 0 and trials = 10 in
  for _ = 1 to trials do
    let noisy = Array.map (fun b -> if Dna.Rng.float r < 0.2 then not b else b) cw in
    match Rs.Ldpc.decode code (Rs.Ldpc.llr_bsc ~p:0.2 noisy) with
    | Ok out when out <> info -> incr miscorrect
    | _ -> ()
  done;
  (* Overload must not silently return the wrong message as "valid"
     more than rarely (min-sum can converge to another codeword). *)
  Alcotest.(check bool) "rare silent miscorrection" true (!miscorrect <= 2)

let test_ldpc_bit_packing () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Dna.Rng.int r 64 in
    let b = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let bits = Rs.Ldpc.bits_of_bytes b ~bits:(8 * n) in
    Alcotest.(check bytes) "pack roundtrip" b (Rs.Ldpc.bytes_of_bits bits)
  done

(* ---------- QCheck ---------- *)

let prop_constrained_roundtrip =
  QCheck.Test.make ~name:"constrained roundtrip" ~count:100
    QCheck.(string_of_size (QCheck.Gen.int_range 0 150))
    (fun content ->
      let data = Bytes.of_string content in
      let s = Codec.Constrained.encode data in
      Codec.Constrained.satisfies_constraint s
      && (match Codec.Constrained.decode ~n_bytes:(Bytes.length data) s with
         | Ok decoded -> Bytes.equal data decoded
         | Error _ -> false))

let prop_ldpc_encode_valid =
  QCheck.Test.make ~name:"ldpc codewords satisfy all checks" ~count:50
    QCheck.(pair (int_range 16 128) (int_bound 10000))
    (fun (k, seed) ->
      let m = max 8 (k / 2) in
      let code = Rs.Ldpc.create ~k ~m () in
      let r = Dna.Rng.create seed in
      let info = Array.init k (fun _ -> Dna.Rng.bool r) in
      Rs.Ldpc.syndrome_ok code (Rs.Ldpc.encode code info))

let () =
  Alcotest.run "alternatives"
    [
      ( "synthesis",
        [
          Alcotest.test_case "perfect coupling" `Quick test_synthesis_perfect_coupling;
          Alcotest.test_case "truncation" `Quick test_synthesis_truncation;
          Alcotest.test_case "yield formula" `Quick test_synthesis_yield_formula;
          Alcotest.test_case "channel nonempty" `Quick test_synthesis_channel_nonempty;
        ] );
      ( "pcr",
        [
          Alcotest.test_case "exponential growth" `Quick test_pcr_growth;
          Alcotest.test_case "zero cycles" `Quick test_pcr_no_cycles_identity;
          Alcotest.test_case "errors create variants" `Quick test_pcr_errors_create_variants;
          Alcotest.test_case "proportional sampling" `Quick test_pcr_sample_proportional;
          Alcotest.test_case "skew grows with cycles" `Quick test_pcr_skew_grows;
        ] );
      ( "constrained",
        [
          Alcotest.test_case "roundtrip" `Quick test_constrained_roundtrip;
          Alcotest.test_case "no homopolymers" `Quick test_constrained_no_homopolymers;
          Alcotest.test_case "density" `Quick test_constrained_density;
          Alcotest.test_case "detects repeats" `Quick test_constrained_detects_repeat;
        ] );
      ( "fountain",
        [
          Alcotest.test_case "roundtrip" `Quick test_fountain_roundtrip;
          Alcotest.test_case "droplet loss" `Quick test_fountain_survives_droplet_loss;
          Alcotest.test_case "garbage droplets" `Quick test_fountain_rejects_garbage_droplets;
          Alcotest.test_case "seed roundtrip" `Quick test_fountain_seed_roundtrip;
          Alcotest.test_case "soliton normalized" `Quick test_fountain_soliton_normalized;
        ] );
      ( "clover",
        [
          Alcotest.test_case "noiseless" `Quick test_clover_noiseless;
          Alcotest.test_case "low noise purity" `Quick test_clover_low_noise;
          Alcotest.test_case "partitions reads" `Quick test_clover_partitions_reads;
        ] );
      ( "ldpc",
        [
          Alcotest.test_case "encode valid" `Quick test_ldpc_encode_valid;
          Alcotest.test_case "clean decode" `Quick test_ldpc_clean_decode;
          Alcotest.test_case "corrects bsc" `Quick test_ldpc_corrects_bsc;
          Alcotest.test_case "corrects erasures" `Quick test_ldpc_corrects_erasures;
          Alcotest.test_case "overload reported" `Quick test_ldpc_overload_reported;
          Alcotest.test_case "bit packing" `Quick test_ldpc_bit_packing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_constrained_roundtrip; prop_ldpc_encode_valid ]
      );
    ]
