(* Tests for the wetlab simulators: channel statistics, sequencing
   coverage, and the learned channels. *)

let rng () = Dna.Rng.create 31415

let avg_edit_rate ch r ~len ~trials =
  let total = ref 0 in
  for _ = 1 to trials do
    let clean = Dna.Strand.random r len in
    let noisy = Simulator.Channel.transmit ch r clean in
    total := !total + Dna.Distance.levenshtein clean noisy
  done;
  float_of_int !total /. float_of_int (trials * len)

(* ---------- channel basics ---------- *)

let test_noiseless_identity () =
  let r = rng () in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 50 in
    Alcotest.(check string) "identity" (Dna.Strand.to_string s)
      (Dna.Strand.to_string (Simulator.Channel.transmit Simulator.Channel.noiseless r s))
  done

let test_iid_zero_rate_identity () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create { p_ins = 0.0; p_del = 0.0; p_sub = 0.0 } in
  let s = Dna.Strand.random r 80 in
  Alcotest.(check string) "no-op" (Dna.Strand.to_string s)
    (Dna.Strand.to_string (Simulator.Channel.transmit ch r s))

let test_iid_rate_calibrated () =
  (* Observed edit rate should be near the configured total rate. *)
  let r = rng () in
  List.iter
    (fun rate ->
      let ch = Simulator.Iid_channel.create_rate ~error_rate:rate in
      let measured = avg_edit_rate ch r ~len:100 ~trials:300 in
      Alcotest.(check bool)
        (Printf.sprintf "rate %.2f measured %.3f" rate measured)
        true
        (measured > 0.6 *. rate && measured < 1.2 *. rate))
    [ 0.03; 0.06; 0.12 ]

let test_iid_validation () =
  Alcotest.check_raises "negative p"
    (Invalid_argument "Iid_channel: probabilities must be nonnegative and sum to at most 1")
    (fun () -> ignore (Simulator.Iid_channel.create { p_ins = -0.1; p_del = 0.0; p_sub = 0.0 }))

let test_iid_deletion_only_shortens () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create { p_ins = 0.0; p_del = 0.2; p_sub = 0.0 } in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 60 in
    let n = Simulator.Channel.transmit ch r s in
    Alcotest.(check bool) "never longer" true (Dna.Strand.length n <= 60)
  done

let test_iid_insertion_only_lengthens () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create { p_ins = 0.2; p_del = 0.0; p_sub = 0.0 } in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 60 in
    let n = Simulator.Channel.transmit ch r s in
    Alcotest.(check bool) "never shorter" true (Dna.Strand.length n >= 60)
  done

let test_sub_only_preserves_length () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create { p_ins = 0.0; p_del = 0.0; p_sub = 0.3 } in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 60 in
    Alcotest.(check int) "same length" 60 (Dna.Strand.length (Simulator.Channel.transmit ch r s))
  done

let test_solqc_noise_level () =
  let r = rng () in
  let ch = Simulator.Solqc_channel.create_rate ~error_rate:0.06 in
  let measured = avg_edit_rate ch r ~len:100 ~trials:300 in
  Alcotest.(check bool) "noisy but bounded" true (measured > 0.01 && measured < 0.12)

let test_wetlab_position_dependence () =
  (* The wetlab stand-in must show a rising error profile toward the 3'
     end — the property naive simulators miss. *)
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let profile = Simulator.Channel.measure_error_profile ch r ~strand_len:100 ~trials:600 in
  let seg lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. profile.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  let middle = seg 30 50 and tail = seg 80 100 in
  Alcotest.(check bool)
    (Printf.sprintf "tail %.3f > middle %.3f" tail middle)
    true (tail > middle)

let test_wetlab_bursts_present () =
  (* Deletion runs of length >= 2 must occur measurably more often than
     an i.i.d. channel of the same rate would produce. *)
  let r = rng () in
  let burst_count ch =
    let bursts = ref 0 in
    for _ = 1 to 400 do
      let clean = Dna.Strand.random r 100 in
      let noisy = Simulator.Channel.transmit ch r clean in
      let al = Dna.Alignment.align clean noisy in
      let run = ref 0 in
      List.iter
        (fun op ->
          match op with
          | Dna.Alignment.Delete _ -> incr run
          | _ ->
              if !run >= 2 then incr bursts;
              run := 0)
        al.Dna.Alignment.script;
      if !run >= 2 then incr bursts
    done;
    !bursts
  in
  let wetlab = burst_count (Simulator.Wetlab_channel.create ()) in
  let iid = burst_count (Simulator.Iid_channel.create_rate ~error_rate:0.10) in
  Alcotest.(check bool)
    (Printf.sprintf "wetlab bursts %d > iid bursts %d" wetlab iid)
    true
    (wetlab > iid)

(* ---------- sequencer ---------- *)

let test_sequencer_fixed_coverage () =
  let r = rng () in
  let strands = Array.init 20 (fun _ -> Dna.Strand.random r 40) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 7) in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  Alcotest.(check int) "total reads" 140 (Array.length reads);
  let per = Array.make 20 0 in
  Array.iter (fun rd -> per.(rd.Simulator.Sequencer.origin) <- per.(rd.Simulator.Sequencer.origin) + 1) reads;
  Array.iter (fun c -> Alcotest.(check int) "exactly 7 each" 7 c) per

let test_sequencer_poisson_coverage () =
  let r = rng () in
  let strands = Array.init 200 (fun _ -> Dna.Strand.random r 30) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Poisson 8.0) in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  let mean = float_of_int (Array.length reads) /. 200.0 in
  Alcotest.(check bool) "mean near 8" true (mean > 7.0 && mean < 9.0)

let test_sequencer_dropout () =
  let r = rng () in
  let strands = Array.init 300 (fun _ -> Dna.Strand.random r 30) in
  let params =
    { (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 2)) with
      Simulator.Sequencer.dropout = 0.5 }
  in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  let seen = Hashtbl.create 64 in
  Array.iter (fun rd -> Hashtbl.replace seen rd.Simulator.Sequencer.origin ()) reads;
  let surviving = Hashtbl.length seen in
  Alcotest.(check bool)
    (Printf.sprintf "about half dropped (%d)" surviving)
    true
    (surviving > 100 && surviving < 200)

let test_sequencer_reverse_orientation () =
  let r = rng () in
  let strands = [| Dna.Strand.of_string "AACCGGTTAACCGGTTAAAA" |] in
  let params =
    { (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 400)) with
      Simulator.Sequencer.p_reverse = 0.5 }
  in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  let fwd = ref 0 and rev = ref 0 in
  Array.iter
    (fun rd ->
      if Dna.Strand.equal rd.Simulator.Sequencer.seq strands.(0) then incr fwd
      else if Dna.Strand.equal rd.Simulator.Sequencer.seq (Dna.Strand.reverse_complement strands.(0))
      then incr rev
      else Alcotest.fail "read is neither orientation")
    reads;
  Alcotest.(check int) "all reads accounted" 400 (!fwd + !rev);
  Alcotest.(check bool) "both orientations occur" true (!fwd > 100 && !rev > 100)

let test_sequencer_parallel_domain_independent () =
  (* With domains > 1 each strand draws from its own pre-split stream,
     so the read set must be identical for every worker count. *)
  let strands =
    let r = Dna.Rng.create 404 in
    Array.init 20 (fun _ -> Dna.Strand.random r 60)
  in
  let params =
    {
      (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Poisson 6.0)) with
      Simulator.Sequencer.dropout = 0.1;
      p_reverse = 0.3;
    }
  in
  let channel = Simulator.Iid_channel.create_rate ~error_rate:0.05 in
  let run domains =
    let r = Dna.Rng.create 321 in
    Simulator.Sequencer.sequence ~domains params channel r strands
    |> Array.map (fun rd ->
           (rd.Simulator.Sequencer.origin, Dna.Strand.to_string rd.Simulator.Sequencer.seq))
  in
  let two = run 2 in
  Alcotest.(check bool) "produced reads" true (Array.length two > 0);
  List.iter
    (fun domains ->
      Alcotest.(check (array (pair int string)))
        (Printf.sprintf "domains=%d matches domains=2" domains)
        two (run domains))
    [ 3; 5; 8 ]

let test_shard_depth_scaling () =
  (* Selecting a small fraction of a shard concentrates the read
     budget: depth scales with sqrt(shard/selected), clamped to
     [base, 4*base]. *)
  let depth = Simulator.Sequencer.shard_depth ~base:10 in
  Alcotest.(check int) "full shard selected -> base" 10 (depth ~n_selected:512 ~n_shard:512);
  Alcotest.(check int) "quarter selected -> 2x" 20 (depth ~n_selected:128 ~n_shard:512);
  Alcotest.(check int) "tiny selection clamps at 4x" 40 (depth ~n_selected:2 ~n_shard:512);
  Alcotest.(check int) "selection larger than shard -> base" 10 (depth ~n_selected:64 ~n_shard:26);
  Alcotest.(check int) "empty selection" 0 (depth ~n_selected:0 ~n_shard:512);
  Alcotest.(check int) "zero base" 0 (Simulator.Sequencer.shard_depth ~base:0 ~n_selected:10 ~n_shard:100)

let test_ideal_clusters () =
  let r = rng () in
  let strands = Array.init 10 (fun _ -> Dna.Strand.random r 30) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 5) in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  let clusters = Simulator.Sequencer.ideal_clusters ~n_strands:10 reads in
  Array.iteri
    (fun i cluster ->
      Alcotest.(check int) "5 reads per cluster" 5 (List.length cluster);
      List.iter
        (fun s -> Alcotest.(check bool) "right origin" true (Dna.Strand.equal s strands.(i)))
        cluster)
    clusters

(* ---------- learned channel ---------- *)

let test_learned_channel_matches_rate () =
  (* Train on pairs from an i.i.d. channel; the learned channel must
     reproduce a similar overall error rate. *)
  let r = rng () in
  let teacher = Simulator.Iid_channel.create_rate ~error_rate:0.08 in
  let pairs = Simulator.Trainer.generate_pairs teacher r ~n:600 ~len:80 in
  let learned = Simulator.Learned_channel.create (Simulator.Learned_channel.train pairs) in
  let target = avg_edit_rate teacher r ~len:80 ~trials:300 in
  let got = avg_edit_rate learned r ~len:80 ~trials:300 in
  Alcotest.(check bool)
    (Printf.sprintf "learned %.3f ~ teacher %.3f" got target)
    true
    (abs_float (got -. target) < 0.03)

let test_learned_channel_position_profile () =
  (* Train on the position-dependent wetlab channel; the learned model
     must reproduce the rising tail. *)
  let r = rng () in
  let teacher = Simulator.Wetlab_channel.create () in
  let pairs = Simulator.Trainer.generate_pairs teacher r ~n:800 ~len:80 in
  let learned = Simulator.Learned_channel.create (Simulator.Learned_channel.train pairs) in
  let profile = Simulator.Channel.measure_error_profile learned r ~strand_len:80 ~trials:500 in
  let seg lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. profile.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  Alcotest.(check bool) "tail heavier than middle" true (seg 60 80 > seg 25 45)

let test_learned_channel_empty_rejected () =
  Alcotest.check_raises "empty dataset"
    (Invalid_argument "Learned_channel.train: empty dataset") (fun () ->
      ignore (Simulator.Learned_channel.train []))

let test_trainer_split_fractions () =
  let r = rng () in
  let pairs = List.init 100 (fun _ -> (Dna.Strand.random r 10, Dna.Strand.random r 10)) in
  let ds = Simulator.Trainer.split r pairs in
  Alcotest.(check int) "train 80" 80 (List.length ds.Simulator.Trainer.train);
  Alcotest.(check int) "val 10" 10 (List.length ds.Simulator.Trainer.validation);
  Alcotest.(check int) "test 10" 10 (List.length ds.Simulator.Trainer.test)

let test_rnn_channel_emits_reads () =
  let r = rng () in
  let model = Neural.Seq2seq.create ~hidden:8 r in
  let ch = Simulator.Rnn_channel.create model in
  for _ = 1 to 10 do
    let s = Dna.Strand.random r 20 in
    let out = Simulator.Channel.transmit ch r s in
    Alcotest.(check bool) "nonempty read" true (Dna.Strand.length out > 0)
  done

(* ---------- pooled sequencing ---------- *)

(* The arena path must replay the boxed path draw for draw: same seed,
   same reads in the same order, same origins — for every channel with a
   native [transmit_into] and for the generic boxed fallback. *)
let check_pool_matches_boxed ?(params = Simulator.Sequencer.default_params
                                          ~coverage:(Simulator.Sequencer.Fixed 4))
    name channel =
  let strands = Array.init 12 (fun i -> Dna.Strand.random (Dna.Rng.create (100 + i)) 90) in
  let boxed =
    Simulator.Sequencer.sequence ~domains:1 params channel (Dna.Rng.create 55) strands
  in
  let pool = Dna.Strand_pool.create () in
  let origins =
    Simulator.Sequencer.sequence_pool params channel (Dna.Rng.create 55) strands ~pool
  in
  Alcotest.(check int)
    (name ^ ": read count") (Array.length boxed) (Array.length origins);
  Array.iteri
    (fun i (r : Simulator.Sequencer.read) ->
      Alcotest.(check int) (Printf.sprintf "%s: origin %d" name i) r.origin origins.(i);
      Alcotest.(check bool)
        (Printf.sprintf "%s: read %d" name i)
        true
        (Dna.Strand.equal r.seq (Dna.Strand_pool.get pool i)))
    boxed

let test_sequence_pool_iid () =
  check_pool_matches_boxed "iid" (Simulator.Iid_channel.create_rate ~error_rate:0.08)

let test_sequence_pool_solqc () =
  check_pool_matches_boxed "solqc" (Simulator.Solqc_channel.create_rate ~error_rate:0.05)

let test_sequence_pool_wetlab () =
  check_pool_matches_boxed "wetlab" (Simulator.Wetlab_channel.create ())

let test_sequence_pool_noiseless () =
  check_pool_matches_boxed "noiseless" Simulator.Channel.noiseless

let test_sequence_pool_generic_fallback () =
  (* A channel with no native [transmit_into] goes through the boxed
     fallback — still the same rng stream. *)
  let ch =
    Simulator.Channel.create ~name:"test-boxed-only" (fun rng s ->
        ignore (Dna.Rng.float rng);
        Dna.Strand.rev s)
  in
  check_pool_matches_boxed "fallback" ch

(* Property: for an ARBITRARY boxed-only channel — randomized draw
   count per base, deletion/insertion probabilities, and a final
   whole-strand draw — the generic [transmit_into] fallback replays the
   boxed path draw for draw through pooled sequencing. *)
let prop_generic_fallback_matches_boxed =
  QCheck.Test.make ~name:"generic transmit_into fallback = boxed (arbitrary channel)" ~count:40
    QCheck.(
      quad (float_range 0.0 0.3) (float_range 0.0 0.3) (int_range 0 3) bool)
    (fun (p_del, p_ins, extra_draws, tail_draw) ->
      let ch =
        Simulator.Channel.create ~name:"arbitrary-boxed-only" (fun rng s ->
            let n = Dna.Strand.length s in
            let buf = Buffer.create n in
            for i = 0 to n - 1 do
              for _ = 1 to extra_draws do
                ignore (Dna.Rng.float rng)
              done;
              let u = Dna.Rng.float rng in
              if u < p_del then ()
              else begin
                if u < p_del +. p_ins then
                  Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4);
                Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Strand.unsafe_get_code s i)
              end
            done;
            if tail_draw then ignore (Dna.Rng.int rng 2);
            Dna.Strand.of_string (Buffer.contents buf))
      in
      let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 3) in
      let strands = Array.init 6 (fun i -> Dna.Strand.random (Dna.Rng.create (200 + i)) 60) in
      let boxed = Simulator.Sequencer.sequence ~domains:1 params ch (Dna.Rng.create 9) strands in
      let pool = Dna.Strand_pool.create () in
      let origins = Simulator.Sequencer.sequence_pool params ch (Dna.Rng.create 9) strands ~pool in
      Array.length boxed = Array.length origins
      && Array.for_all
           (fun ok -> ok)
           (Array.mapi
              (fun i (r : Simulator.Sequencer.read) ->
                r.origin = origins.(i) && Dna.Strand.equal r.seq (Dna.Strand_pool.get pool i))
              boxed))

let test_sequence_pool_dropout_reverse () =
  check_pool_matches_boxed "dropout+reverse"
    ~params:
      {
        Simulator.Sequencer.coverage = Simulator.Sequencer.Poisson 3.0;
        dropout = 0.2;
        p_reverse = 0.4;
      }
    (Simulator.Iid_channel.create_rate ~error_rate:0.08)

let () =
  Alcotest.run "simulator"
    [
      ( "channels",
        [
          Alcotest.test_case "noiseless identity" `Quick test_noiseless_identity;
          Alcotest.test_case "iid zero rate" `Quick test_iid_zero_rate_identity;
          Alcotest.test_case "iid rate calibrated" `Quick test_iid_rate_calibrated;
          Alcotest.test_case "iid validation" `Quick test_iid_validation;
          Alcotest.test_case "deletion only shortens" `Quick test_iid_deletion_only_shortens;
          Alcotest.test_case "insertion only lengthens" `Quick test_iid_insertion_only_lengthens;
          Alcotest.test_case "substitution preserves length" `Quick test_sub_only_preserves_length;
          Alcotest.test_case "solqc noise level" `Quick test_solqc_noise_level;
          Alcotest.test_case "wetlab position dependence" `Quick test_wetlab_position_dependence;
          Alcotest.test_case "wetlab bursts" `Quick test_wetlab_bursts_present;
        ] );
      ( "sequencer",
        [
          Alcotest.test_case "fixed coverage" `Quick test_sequencer_fixed_coverage;
          Alcotest.test_case "poisson coverage" `Quick test_sequencer_poisson_coverage;
          Alcotest.test_case "dropout" `Quick test_sequencer_dropout;
          Alcotest.test_case "reverse orientation" `Quick test_sequencer_reverse_orientation;
          Alcotest.test_case "parallel domain independent" `Quick
            test_sequencer_parallel_domain_independent;
          Alcotest.test_case "shard depth scaling" `Quick test_shard_depth_scaling;
          Alcotest.test_case "ideal clusters" `Quick test_ideal_clusters;
        ] );
      ( "sequence_pool",
        [
          Alcotest.test_case "iid = boxed" `Quick test_sequence_pool_iid;
          Alcotest.test_case "solqc = boxed" `Quick test_sequence_pool_solqc;
          Alcotest.test_case "wetlab = boxed" `Quick test_sequence_pool_wetlab;
          Alcotest.test_case "noiseless = boxed" `Quick test_sequence_pool_noiseless;
          Alcotest.test_case "generic fallback = boxed" `Quick
            test_sequence_pool_generic_fallback;
          Alcotest.test_case "dropout/reverse = boxed" `Quick
            test_sequence_pool_dropout_reverse;
          QCheck_alcotest.to_alcotest prop_generic_fallback_matches_boxed;
        ] );
      ( "learned",
        [
          Alcotest.test_case "matches iid rate" `Quick test_learned_channel_matches_rate;
          Alcotest.test_case "position profile" `Quick test_learned_channel_position_profile;
          Alcotest.test_case "empty rejected" `Quick test_learned_channel_empty_rejected;
          Alcotest.test_case "trainer split" `Quick test_trainer_split_fractions;
          Alcotest.test_case "rnn channel emits" `Quick test_rnn_channel_emits_reads;
        ] );
    ]
