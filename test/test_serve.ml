(* The serving front end: linearizable interleavings against a model,
   read coalescing visible in the sequencing-pass counter, and bounded
   admission. *)

let temp_serve_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "serve_test_%d_%d" (Unix.getpid ()) !counter)
    in
    dir

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" label (Store.error_message e)

let test_config =
  { Store.default_config with Store.error_rate = 0.03; Store.cache_objects = 4 }

let random_file rng n = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int rng 256))

(* ---------- linearizable interleavings against a model ---------- *)

(* Round semantics are the spec: gets observe the round-start state,
   writes then apply in arrival order. We drive random put/get/overwrite
   interleavings from 3 clients and replay them against a Hashtbl model;
   every completion must match, and at the end no acknowledged update
   may be lost. *)
let run_interleavings seed =
  let dir = temp_serve_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed ()) in
  let model : (string, Bytes.t) Hashtbl.t = Hashtbl.create 16 in
  let rng = Dna.Rng.create (seed * 77) in
  let base_keys = List.init 4 (fun i -> Printf.sprintf "k%d" i) in
  List.iter
    (fun key ->
      let data = random_file rng 120 in
      ok_or_fail ("put " ^ key) (Store.put store ~key data);
      Hashtbl.replace model key data)
    base_keys;
  let serve =
    Serve.create ~config:{ Serve.default_config with Serve.window = 8; Serve.max_queue = 64 } store
  in
  let fresh = ref 0 in
  for round = 1 to 4 do
    let round_start = Hashtbl.copy model in
    (* Build this round's requests and, in the same arrival order, the
       expected outcome of each against the model. *)
    let expectations =
      List.init 6 (fun i ->
          let pick () = List.nth base_keys (Dna.Rng.int rng (List.length base_keys)) in
          match Dna.Rng.int rng 4 with
          | 0 ->
              let key = Printf.sprintf "fresh%d" !fresh in
              incr fresh;
              let data = random_file rng 100 in
              Hashtbl.replace model key data;
              ((i mod 3), Serve.Put { key; data }, `Ack)
          | 1 | 2 ->
              let key = if Dna.Rng.int rng 6 = 0 then "ghost" else pick () in
              let expected =
                match Hashtbl.find_opt round_start key with
                | Some bytes -> `Value bytes
                | None -> `Missing key
              in
              ((i mod 3), Serve.Get { key }, expected)
          | _ ->
              let key = pick () in
              let data = random_file rng 110 in
              Hashtbl.replace model key data;
              ((i mod 3), Serve.Overwrite { key; data }, `Ack))
    in
    List.iter
      (fun (client, request, _) ->
        match Serve.submit serve ~client request with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "submit rejected: %s" (Serve.error_message e))
      expectations;
    let completions = Serve.step serve in
    Alcotest.(check int)
      (Printf.sprintf "round %d serves the whole window" round)
      (List.length expectations) (List.length completions);
    List.iter2
      (fun (client, _, expected) (c : Serve.completion) ->
        Alcotest.(check int) "client echoed" client c.Serve.client;
        match (expected, c.Serve.result) with
        | `Ack, Ok Serve.Ack -> ()
        | `Value bytes, Ok (Serve.Value got) ->
            Alcotest.(check bytes) "get observes round-start state" bytes got
        | `Missing key, Error (Serve.Store (Store.Key_not_found k)) ->
            Alcotest.(check string) "missing key named" key k
        | _, Ok _ -> Alcotest.fail "unexpected success shape"
        | _, Error e -> Alcotest.failf "unexpected error: %s" (Serve.error_message e))
      expectations completions
  done;
  (* No lost updates: every key decodes to the last acknowledged write. *)
  Hashtbl.iter
    (fun key expected ->
      let got = ok_or_fail ("final get " ^ key) (Store.get ~use_cache:false store ~key) in
      Alcotest.(check bytes) ("final state of " ^ key) expected got)
    model;
  let s = Serve.stats serve in
  Alcotest.(check int) "4 rounds ran" 4 s.Serve.rounds;
  Alcotest.(check int) "24 requests served" 24 s.Serve.served;
  Alcotest.(check int) "nothing rejected" 0 s.Serve.rejected

let test_interleavings_two_seeds () = List.iter run_interleavings [ 1; 2 ]

(* ---------- read coalescing ---------- *)

let test_coalescing_shares_sequencing_pass () =
  let dir = temp_serve_dir () in
  (* Cache off so every get is a genuine wetlab read, and a roomy shard
     target so all objects land in one shard. *)
  let config = { test_config with Store.cache_objects = 0 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:5 ()) in
  let rng = Dna.Rng.create 404 in
  let keys = List.init 4 (fun i -> Printf.sprintf "obj%d" i) in
  List.iter (fun key -> ok_or_fail ("put " ^ key) (Store.put store ~key (random_file rng 100))) keys;
  let shards = List.filter_map (fun key -> Store.object_shard store ~key) keys in
  Alcotest.(check (list int)) "all objects share shard 0" [ 0; 0; 0; 0 ] shards;
  let serve = Serve.create store in
  List.iteri
    (fun i key ->
      match Serve.submit serve ~client:i (Serve.Get { key }) with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "submit: %s" (Serve.error_message e))
    keys;
  let before = Store.sequencing_passes store in
  let completions = Serve.step serve in
  Alcotest.(check int) "all four gets served" 4 (List.length completions);
  List.iter
    (fun (c : Serve.completion) ->
      match c.Serve.result with
      | Ok (Serve.Value _) -> ()
      | _ -> Alcotest.fail "get failed")
    completions;
  Alcotest.(check int) "four same-shard gets cost one sequencing pass" 1
    (Store.sequencing_passes store - before);
  Alcotest.(check int) "three reads rode along for free" 3
    (Serve.stats serve).Serve.coalesced_reads

(* ---------- bounded admission ---------- *)

let test_admission_rejects_overloaded () =
  let dir = temp_serve_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:9 ()) in
  ok_or_fail "put" (Store.put store ~key:"k" (random_file (Dna.Rng.create 7) 90));
  let serve =
    Serve.create ~config:{ Serve.default_config with Serve.window = 2; Serve.max_queue = 3 } store
  in
  let admit i =
    match Serve.submit serve ~client:0 (Serve.Get { key = "k" }) with
    | Ok _ -> `Admitted
    | Error (Serve.Overloaded { queue_depth; max_queue }) ->
        Alcotest.(check int) (Printf.sprintf "rejection %d reports depth" i) 3 queue_depth;
        Alcotest.(check int) "and the limit" 3 max_queue;
        `Rejected
    | Error e -> Alcotest.failf "unexpected error: %s" (Serve.error_message e)
  in
  List.iter (fun i -> Alcotest.(check bool) "first three admitted" true (admit i = `Admitted)) [ 1; 2; 3 ];
  Alcotest.(check bool) "fourth rejected, not queued" true (admit 4 = `Rejected);
  Alcotest.(check int) "queue still at the bound" 3 (Serve.queue_depth serve);
  Alcotest.(check int) "rejection counted" 1 (Serve.stats serve).Serve.rejected;
  (* A drained queue admits again. *)
  let completions = Serve.drain serve in
  Alcotest.(check int) "the three queued gets completed" 3 (List.length completions);
  Alcotest.(check bool) "admission reopens after drain" true (admit 5 = `Admitted)

(* ---------- workload machinery ---------- *)

let test_zipf_sampler () =
  let cdf = Serve.Workload.zipf_cdf ~n:10 ~s:0.99 in
  Alcotest.(check int) "cdf covers the ranks" 10 (Array.length cdf);
  Alcotest.(check bool) "cdf ends at 1" true (abs_float (cdf.(9) -. 1.0) < 1e-9);
  let rng = Dna.Rng.create 42 in
  let counts = Array.make 10 0 in
  for _ = 1 to 2000 do
    let k = Serve.Workload.zipf_draw cdf rng in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(9));
  Alcotest.(check bool) "skew is zipf-like (head > 2x tail)" true (counts.(0) > 2 * counts.(9))

let test_workload_run_summary () =
  let dir = temp_serve_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:3 ()) in
  let rng = Dna.Rng.create 11 in
  let keys = List.init 4 (fun i -> Printf.sprintf "w%d" i) in
  List.iter (fun key -> ok_or_fail ("put " ^ key) (Store.put store ~key (random_file rng 90))) keys;
  let mix = { Serve.Workload.label = "read95"; Serve.Workload.read_pct = 0.95 } in
  let summary, completions =
    Serve.Workload.run ~mix ~n_clients:4 ~n_ops:30 ~zipf_s:0.99 ~seed:21 ~keys store
  in
  Alcotest.(check int) "every op completed" 30 summary.Serve.Workload.ops;
  Alcotest.(check int) "completions match" 30 (List.length completions);
  Alcotest.(check int) "reads + writes = ops" 30
    (summary.Serve.Workload.reads + summary.Serve.Workload.writes);
  Alcotest.(check bool) "read-heavy mix mostly reads" true
    (summary.Serve.Workload.reads > summary.Serve.Workload.writes);
  Alcotest.(check bool) "latency tail ordered" true
    (summary.Serve.Workload.p50_ms <= summary.Serve.Workload.p95_ms
    && summary.Serve.Workload.p95_ms <= summary.Serve.Workload.p99_ms);
  List.iter
    (fun (c : Serve.completion) ->
      (match c.Serve.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "workload op failed: %s" (Serve.error_message e));
      Alcotest.(check bool) "latency non-negative" true
        (c.Serve.completed_s >= c.Serve.submitted_s))
    completions;
  (* The JSON rendering parses back. *)
  let json = Store.Json.to_string (Serve.Workload.summary_json summary) in
  match Store.Json.of_string json with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "summary JSON does not parse: %s" e

(* ---------- resilience: deadlines, degraded reads, backoff ---------- *)

let test_deadline_times_out_stale_requests () =
  let dir = temp_serve_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:51 ()) in
  ok_or_fail "put" (Store.put store ~key:"k" (random_file (Dna.Rng.create 8) 90));
  let serve =
    Serve.create ~config:{ Serve.default_config with Serve.deadline_s = Some 0.01 } store
  in
  (match Serve.submit serve ~client:0 (Serve.Get { key = "k" }) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "submit: %s" (Serve.error_message e));
  Unix.sleepf 0.03;
  let before = Store.sequencing_passes store in
  (match Serve.step serve with
  | [ c ] -> (
      match c.Serve.result with
      | Error (Serve.Timed_out { waited_s; deadline_s }) ->
          Alcotest.(check bool) "waited past the deadline" true (waited_s > deadline_s);
          Alcotest.(check bool) "deadline echoed" true (abs_float (deadline_s -. 0.01) < 1e-9)
      | Ok _ -> Alcotest.fail "stale request was served"
      | Error e -> Alcotest.failf "wrong error: %s" (Serve.error_message e))
  | cs -> Alcotest.failf "expected one completion, got %d" (List.length cs));
  Alcotest.(check int) "no wetlab work spent on it" 0 (Store.sequencing_passes store - before);
  Alcotest.(check int) "timeout counted" 1 (Serve.stats serve).Serve.timed_out;
  (* A prompt request under the same config is served normally. *)
  (match Serve.submit serve ~client:0 (Serve.Get { key = "k" }) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "submit: %s" (Serve.error_message e));
  match Serve.step serve with
  | [ { Serve.result = Ok (Serve.Value _); _ } ] -> ()
  | _ -> Alcotest.fail "prompt request not served"

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let small_params = { Codec.Params.payload_nt = 60; rs_data = 6; rs_parity = 3; scramble_seed = 7 }

let test_degraded_reads_answer_partial () =
  (* Damage the tail units of an object and let scrub mark it Degraded:
     with [degraded_reads] off the get fails typed; with it on, the
     same get comes back Partial with the surviving prefix intact. *)
  let dir = temp_serve_dir () in
  let config = { test_config with Store.error_rate = 0.005 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:53 ()) in
  let data = random_file (Dna.Rng.create 9) 300 in
  ok_or_fail "put" (Store.put ~params:small_params store ~key:"frayed" data);
  let path =
    match Store.object_shard store ~key:"frayed" with
    | Some shard -> (
        match Store.shard_path store ~shard with
        | Some p -> p
        | None -> Alcotest.fail "no shard file")
    | None -> Alcotest.fail "no shard"
  in
  let records, _ = Dna.Fasta.parse_string (read_whole path) in
  let keep = List.filteri (fun i _ -> i < List.length records - 12) records in
  write_whole path (Dna.Fasta.to_string keep);
  let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
  (match Store.scrub store with
  | Ok r -> Alcotest.(check int) "object degraded" 1 r.Store.objects_degraded
  | Error e -> Alcotest.failf "scrub: %s" (Store.error_message e));
  let get_via config_patch =
    let serve = Serve.create ~config:config_patch store in
    (match Serve.submit serve ~client:0 (Serve.Get { key = "frayed" }) with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "submit: %s" (Serve.error_message e));
    match Serve.step serve with
    | [ c ] -> (c.Serve.result, Serve.stats serve)
    | cs -> Alcotest.failf "expected one completion, got %d" (List.length cs)
  in
  (match get_via Serve.default_config with
  | Error (Serve.Store (Store.Object_degraded { key = "frayed"; _ })), st ->
      Alcotest.(check int) "no degraded answer without opt-in" 0 st.Serve.degraded
  | Ok _, _ -> Alcotest.fail "degraded object served without opt-in"
  | Error e, _ -> Alcotest.failf "wrong error: %s" (Serve.error_message e));
  match get_via { Serve.default_config with Serve.degraded_reads = true } with
  | Ok (Serve.Partial { bytes; recovered_fraction; recovered_ranges }), st ->
      Alcotest.(check int) "original length" 300 (Bytes.length bytes);
      Alcotest.(check bool) "strictly partial" true
        (recovered_fraction > 0.0 && recovered_fraction < 1.0);
      Alcotest.(check bool) "ranges reported" true (recovered_ranges <> []);
      List.iter
        (fun (a, b) ->
          Alcotest.(check bytes)
            (Printf.sprintf "range [%d,%d) intact" a b)
            (Bytes.sub data a (b - a))
            (Bytes.sub bytes a (b - a)))
        recovered_ranges;
      Alcotest.(check int) "degraded answer counted" 1 st.Serve.degraded
  | Ok _, _ -> Alcotest.fail "expected a Partial response"
  | Error e, _ -> Alcotest.failf "degraded read failed: %s" (Serve.error_message e)

let test_workload_backoff_is_bounded_and_deterministic () =
  (* Saturate a tiny scheduler: rejections must be retried under the
     seeded backoff (not spun on), the retry schedule must replay
     exactly for the same seed, and every operation must either
     complete or be counted as given up. *)
  let run_once dir_seed =
    let dir = temp_serve_dir () in
    let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:dir_seed ()) in
    let rng = Dna.Rng.create 12 in
    let keys = List.init 3 (fun i -> Printf.sprintf "s%d" i) in
    List.iter
      (fun key -> ok_or_fail ("put " ^ key) (Store.put store ~key (random_file rng 90)))
      keys;
    let config = { Serve.default_config with Serve.window = 2; Serve.max_queue = 2 } in
    let mix = { Serve.Workload.label = "hot"; Serve.Workload.read_pct = 1.0 } in
    Serve.Workload.run ~config ~mix ~n_clients:8 ~n_ops:24 ~zipf_s:0.5 ~seed:33 ~keys store
  in
  let summary, completions = run_once 57 in
  Alcotest.(check bool) "saturation rejected something" true (summary.Serve.Workload.rejected > 0);
  Alcotest.(check bool) "rejections were retried" true (summary.Serve.Workload.retries > 0);
  Alcotest.(check int) "every op completed or gave up" 24
    (summary.Serve.Workload.ops + summary.Serve.Workload.gave_up);
  List.iter
    (fun (c : Serve.completion) ->
      match c.Serve.result with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "op failed: %s" (Serve.error_message e))
    completions;
  (* Replay: the whole retry schedule derives from the seed. *)
  let summary', _ = run_once 57 in
  Alcotest.(check int) "rejected replays" summary.Serve.Workload.rejected
    summary'.Serve.Workload.rejected;
  Alcotest.(check int) "retries replay" summary.Serve.Workload.retries
    summary'.Serve.Workload.retries;
  Alcotest.(check int) "gave_up replays" summary.Serve.Workload.gave_up
    summary'.Serve.Workload.gave_up;
  Alcotest.(check int) "ops replay" summary.Serve.Workload.ops summary'.Serve.Workload.ops

let () =
  Alcotest.run "serve"
    [
      ( "linearizability",
        [
          Alcotest.test_case "put/get/overwrite interleavings (2 seeds)" `Slow
            test_interleavings_two_seeds;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "same-shard gets share one pass" `Slow
            test_coalescing_shares_sequencing_pass;
        ] );
      ( "admission",
        [ Alcotest.test_case "overload rejects, drain reopens" `Slow test_admission_rejects_overloaded ] );
      ( "workload",
        [
          Alcotest.test_case "zipf sampler skews" `Quick test_zipf_sampler;
          Alcotest.test_case "closed-loop run summary" `Slow test_workload_run_summary;
        ] );
      ( "resilience",
        [
          Alcotest.test_case "deadline times out stale requests" `Slow
            test_deadline_times_out_stale_requests;
          Alcotest.test_case "degraded reads answer partial" `Slow
            test_degraded_reads_answer_partial;
          Alcotest.test_case "backoff bounded and deterministic" `Slow
            test_workload_backoff_is_bounded_and_deterministic;
        ] );
    ]
