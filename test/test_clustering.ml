(* Tests for signatures, union-find, the clustering algorithm, auto
   threshold configuration and clustering metrics. *)

let rng () = Dna.Rng.create 2718

(* ---------- union-find ---------- *)

let test_uf_basics () =
  let uf = Clustering.Union_find.create 5 in
  Alcotest.(check int) "initially n clusters" 5 (Clustering.Union_find.n_clusters uf);
  Clustering.Union_find.union uf 0 1;
  Clustering.Union_find.union uf 3 4;
  Alcotest.(check int) "after two unions" 3 (Clustering.Union_find.n_clusters uf);
  Alcotest.(check bool) "0 ~ 1" true (Clustering.Union_find.same uf 0 1);
  Alcotest.(check bool) "1 !~ 2" false (Clustering.Union_find.same uf 1 2);
  Clustering.Union_find.union uf 1 4;
  Alcotest.(check bool) "transitive" true (Clustering.Union_find.same uf 0 3)

let test_uf_idempotent_union () =
  let uf = Clustering.Union_find.create 3 in
  Clustering.Union_find.union uf 0 1;
  Clustering.Union_find.union uf 0 1;
  Clustering.Union_find.union uf 1 0;
  Alcotest.(check int) "count stable" 2 (Clustering.Union_find.n_clusters uf)

let test_uf_clusters_partition () =
  let r = rng () in
  let n = 60 in
  let uf = Clustering.Union_find.create n in
  for _ = 1 to 40 do
    Clustering.Union_find.union uf (Dna.Rng.int r n) (Dna.Rng.int r n)
  done;
  let clusters = Clustering.Union_find.clusters uf in
  let all = List.concat_map Array.to_list clusters in
  Alcotest.(check int) "covers all" n (List.length all);
  Alcotest.(check int) "no duplicates" n (List.length (List.sort_uniq compare all));
  Alcotest.(check int) "cluster count matches" (Clustering.Union_find.n_clusters uf)
    (List.length clusters)

(* ---------- signatures ---------- *)

let test_signature_identical_reads () =
  let r = rng () in
  let s = Dna.Strand.random r 60 in
  List.iter
    (fun kind ->
      let a = Clustering.Signature.compute ~q:4 kind s in
      let b = Clustering.Signature.compute ~q:4 kind s in
      Alcotest.(check int) "distance zero" 0 (Clustering.Signature.distance a b))
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let test_signature_separation () =
  (* Same-cluster distances must sit clearly below unrelated ones. *)
  let r = rng () in
  let mutate s =
    Dna.Strand.of_codes
      (Array.map (fun c -> if Dna.Rng.float r < 0.05 then Dna.Rng.int r 4 else c)
         (Dna.Strand.to_codes s))
  in
  List.iter
    (fun kind ->
      let same = ref 0 and diff = ref 0 and n = 40 in
      for _ = 1 to n do
        let a = Dna.Strand.random r 100 in
        let b = mutate a in
        let c = Dna.Strand.random r 100 in
        let sig_of s = Clustering.Signature.compute ~q:4 kind s in
        same := !same + Clustering.Signature.distance (sig_of a) (sig_of b);
        diff := !diff + Clustering.Signature.distance (sig_of a) (sig_of c)
      done;
      Alcotest.(check bool)
        (Printf.sprintf "same %d << diff %d" !same !diff)
        true
        (float_of_int !same < 0.6 *. float_of_int !diff))
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let test_signature_mixed_kinds_rejected () =
  let s = Dna.Strand.of_string "ACGTACGTAC" in
  let q = Clustering.Signature.compute ~q:3 Clustering.Signature.Qgram s in
  let w = Clustering.Signature.compute ~q:3 Clustering.Signature.Wgram s in
  Alcotest.check_raises "mixed kinds"
    (Invalid_argument "Signature.distance: mixed signature kinds") (fun () ->
      ignore (Clustering.Signature.distance q w))

let test_signature_qgram_is_presence () =
  (* "ACGT" with q=2 contains grams AC, CG, GT and no others. *)
  match Clustering.Signature.compute ~q:2 Clustering.Signature.Qgram (Dna.Strand.of_string "ACGT") with
  | Clustering.Signature.Q bits ->
      let count = ref 0 in
      Bytes.iter (fun c -> if c = '\001' then incr count) bits;
      Alcotest.(check int) "three grams present" 3 !count;
      Alcotest.(check int) "dictionary size 16" 16 (Bytes.length bits)
  | Clustering.Signature.W _ -> Alcotest.fail "wrong kind"

let test_signature_wgram_positions () =
  (* "AACG": gram AA at 0, AC at 1, CG at 2. *)
  match Clustering.Signature.compute ~q:2 Clustering.Signature.Wgram (Dna.Strand.of_string "AACG") with
  | Clustering.Signature.W pos ->
      Alcotest.(check int) "AA at 0" 0 pos.(0);
      (* AC = code 0*4+1 = 1 *)
      Alcotest.(check int) "AC at 1" 1 pos.(1);
      (* CG = 1*4+2 = 6 *)
      Alcotest.(check int) "CG at 2" 2 pos.(6);
      (* TT = 15 absent *)
      Alcotest.(check int) "TT absent" (Clustering.Signature.absent_position ~read_len:4) pos.(15)
  | Clustering.Signature.Q _ -> Alcotest.fail "wrong kind"

(* ---------- clustering ---------- *)

let make_reads ?(n_strands = 40) ?(coverage = 8) ?(error_rate = 0.05) ?(len = 100) r =
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  let strands = Array.init n_strands (fun _ -> Dna.Strand.random r len) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed coverage) in
  let reads = Simulator.Sequencer.sequence params ch r strands in
  ( Array.map (fun rd -> rd.Simulator.Sequencer.seq) reads,
    Array.map (fun rd -> rd.Simulator.Sequencer.origin) reads )

let run_clustering ?(kind = Clustering.Signature.Qgram) r reads =
  let read_len = Dna.Strand.length reads.(0) in
  let params = Clustering.Cluster.default_params ~kind ~read_len () in
  let config = Clustering.Auto_config.configure params r reads in
  let params = Clustering.Auto_config.apply config params in
  Clustering.Cluster.run params r reads

let test_clustering_recovers_planted () =
  let r = rng () in
  let reads, truth = make_reads r in
  List.iter
    (fun kind ->
      let result = run_clustering ~kind r reads in
      let acc = Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters in
      Alcotest.(check bool)
        (Printf.sprintf "accuracy %.3f >= 0.9" acc)
        true (acc >= 0.9);
      let purity = Clustering.Metrics.purity ~truth result.Clustering.Cluster.clusters in
      Alcotest.(check bool) (Printf.sprintf "purity %.3f >= 0.98" purity) true (purity >= 0.98))
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let test_clustering_noiseless_exact () =
  (* With no noise, identical reads must collapse into exactly the
     underlying clusters with no edit-distance comparisons wasted. *)
  let r = rng () in
  let strands = Array.init 30 (fun _ -> Dna.Strand.random r 80) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 5) in
  let reads = Simulator.Sequencer.sequence params Simulator.Channel.noiseless r strands in
  let rs = Array.map (fun rd -> rd.Simulator.Sequencer.seq) reads in
  let truth = Array.map (fun rd -> rd.Simulator.Sequencer.origin) reads in
  let result = run_clustering r rs in
  Alcotest.(check (float 0.01)) "accuracy 1.0" 1.0
    (Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters)

let test_clustering_empty_input () =
  let r = rng () in
  let params = Clustering.Cluster.default_params ~read_len:100 () in
  let result = Clustering.Cluster.run params r [||] in
  Alcotest.(check int) "no clusters" 0 (List.length result.Clustering.Cluster.clusters)

let test_clustering_singleton_input () =
  let r = rng () in
  let reads = [| Dna.Strand.random r 100 |] in
  let result = run_clustering r reads in
  Alcotest.(check int) "one cluster" 1 (List.length result.Clustering.Cluster.clusters)

let test_clustering_stats_populated () =
  let r = rng () in
  let reads, _ = make_reads r in
  let result = run_clustering r reads in
  let s = result.Clustering.Cluster.stats in
  Alcotest.(check bool) "signature comparisons happened" true (s.Clustering.Cluster.signature_comparisons > 0);
  Alcotest.(check bool) "merges happened" true (s.Clustering.Cluster.merges > 0);
  Alcotest.(check bool) "time recorded" true (s.Clustering.Cluster.clustering_time > 0.0)

let test_clustering_parallel_same_quality () =
  (* Domains change scheduling, not merge decisions' admissibility:
     parallel run must reach comparable accuracy. *)
  let r1 = Dna.Rng.create 99 and r2 = Dna.Rng.create 99 in
  let reads, truth = make_reads (Dna.Rng.create 5) in
  let read_len = Dna.Strand.length reads.(0) in
  let base = Clustering.Cluster.default_params ~read_len () in
  let cfg = Clustering.Auto_config.configure base (Dna.Rng.create 1) reads in
  let base = Clustering.Auto_config.apply cfg base in
  let seq_result = Clustering.Cluster.run { base with domains = 1 } r1 reads in
  let par_result = Clustering.Cluster.run { base with domains = 2 } r2 reads in
  let acc_seq = Clustering.Metrics.accuracy ~truth seq_result.Clustering.Cluster.clusters in
  let acc_par = Clustering.Metrics.accuracy ~truth par_result.Clustering.Cluster.clusters in
  Alcotest.(check bool) "both accurate" true (acc_seq >= 0.9 && acc_par >= 0.9)

let test_clustering_parallel_identical_assignment () =
  (* Stronger than "comparable accuracy": merge decisions are computed
     in pure workers and applied serially in a fixed order, so under the
     same seed the assignment must be bit-identical for every worker
     count. *)
  let reads, _ = make_reads (Dna.Rng.create 5) in
  let read_len = Dna.Strand.length reads.(0) in
  let base = Clustering.Cluster.default_params ~read_len () in
  let cfg = Clustering.Auto_config.configure base (Dna.Rng.create 1) reads in
  let base = Clustering.Auto_config.apply cfg base in
  let run domains =
    (Clustering.Cluster.run { base with domains } (Dna.Rng.create 99) reads)
      .Clustering.Cluster.assignment
  in
  let serial = run 1 in
  List.iter
    (fun domains ->
      Alcotest.(check (array int))
        (Printf.sprintf "domains=%d identical to serial" domains)
        serial (run domains))
    [ 2; 3; 5 ]

let test_read_clusters_materialization () =
  let r = rng () in
  let reads, _ = make_reads ~n_strands:10 ~coverage:4 r in
  let result = run_clustering r reads in
  let clusters = Clustering.Cluster.read_clusters result reads in
  let total = List.fold_left (fun acc c -> acc + List.length c) 0 clusters in
  Alcotest.(check int) "all reads kept" (Array.length reads) total

(* ---------- auto configuration ---------- *)

let test_auto_config_thresholds_ordered () =
  let r = rng () in
  let reads, _ = make_reads r in
  let params = Clustering.Cluster.default_params ~read_len:100 () in
  let config = Clustering.Auto_config.configure params r reads in
  Alcotest.(check bool) "theta_low < theta_high" true
    (config.Clustering.Auto_config.theta_low < config.Clustering.Auto_config.theta_high);
  Alcotest.(check bool) "edit threshold positive" true
    (config.Clustering.Auto_config.edit_threshold > 0)

let test_auto_config_separates_modes () =
  (* At low error the sampled distances show the Figure 5 jump; the
     fitted thresholds must bracket same-cluster distances. *)
  let r = rng () in
  let reads, truth = make_reads ~error_rate:0.03 r in
  let params = Clustering.Cluster.default_params ~read_len:100 () in
  let config = Clustering.Auto_config.configure params r reads in
  (* Measure where same-cluster signature distances actually sit. *)
  let sig_of i = Clustering.Signature.compute ~q:4 Clustering.Signature.Qgram reads.(i) in
  let max_same = ref 0 and checked = ref 0 in
  (try
     for i = 0 to Array.length reads - 1 do
       for j = i + 1 to min (Array.length reads - 1) (i + 20) do
         if truth.(i) = truth.(j) then begin
           max_same := max !max_same (Clustering.Signature.distance (sig_of i) (sig_of j));
           incr checked;
           if !checked > 150 then raise Exit
         end
       done
     done
   with Exit -> ());
  Alcotest.(check bool)
    (Printf.sprintf "theta_high %d >= typical same distance" config.Clustering.Auto_config.theta_high)
    true
    (config.Clustering.Auto_config.theta_high * 2 >= !max_same)

let test_figure5_series_sorted () =
  let r = rng () in
  let reads, _ = make_reads r in
  let params = Clustering.Cluster.default_params ~read_len:100 () in
  let config = Clustering.Auto_config.configure params r reads in
  let series = Clustering.Auto_config.figure5_series config in
  let sorted = Array.copy series in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "sorted ascending" sorted series;
  Alcotest.(check bool) "nonempty" true (Array.length series > 0)

(* ---------- metrics ---------- *)

let test_metrics_perfect_clustering () =
  let truth = [| 0; 0; 1; 1; 2 |] in
  let clusters = [ [| 0; 1 |]; [| 2; 3 |]; [| 4 |] ] in
  Alcotest.(check (float 1e-9)) "accuracy 1" 1.0 (Clustering.Metrics.accuracy ~truth clusters);
  Alcotest.(check (float 1e-9)) "purity 1" 1.0 (Clustering.Metrics.purity ~truth clusters);
  Alcotest.(check (float 1e-9)) "rand 1" 1.0 (Clustering.Metrics.rand_index ~truth clusters)

let test_metrics_split_cluster () =
  let truth = [| 0; 0; 0; 0 |] in
  let clusters = [ [| 0; 1 |]; [| 2; 3 |] ] in
  (* No computed cluster covers the whole true cluster. *)
  Alcotest.(check (float 1e-9)) "accuracy 0" 0.0 (Clustering.Metrics.accuracy ~truth clusters);
  (* gamma 0.5: a half-cluster suffices *)
  Alcotest.(check (float 1e-9)) "gamma 0.5 recovers" 1.0
    (Clustering.Metrics.accuracy ~gamma:0.5 ~truth clusters);
  Alcotest.(check (float 1e-9)) "purity still 1" 1.0 (Clustering.Metrics.purity ~truth clusters)

let test_metrics_merged_cluster () =
  let truth = [| 0; 0; 1; 1 |] in
  let clusters = [ [| 0; 1; 2; 3 |] ] in
  Alcotest.(check (float 1e-9)) "accuracy 0" 0.0 (Clustering.Metrics.accuracy ~truth clusters);
  Alcotest.(check (float 1e-9)) "purity 0.5" 0.5 (Clustering.Metrics.purity ~truth clusters)

let test_metrics_foreign_element_blocks_recovery () =
  let truth = [| 0; 0; 1 |] in
  let clusters = [ [| 0; 1; 2 |] ] in
  Alcotest.(check (float 1e-9)) "not recovered with foreign read" 0.0
    (Clustering.Metrics.accuracy ~gamma:0.5 ~truth clusters)

(* ---------- QCheck ---------- *)

let prop_uf_union_monotone =
  QCheck.Test.make ~name:"union never increases cluster count" ~count:100
    QCheck.(pair (int_range 2 40) (list (pair (int_bound 39) (int_bound 39))))
    (fun (n, unions) ->
      let uf = Clustering.Union_find.create n in
      List.for_all
        (fun (a, b) ->
          let a = a mod n and b = b mod n in
          let before = Clustering.Union_find.n_clusters uf in
          Clustering.Union_find.union uf a b;
          let after = Clustering.Union_find.n_clusters uf in
          after = before || after = before - 1)
        unions)

let prop_signature_distance_symmetric =
  QCheck.Test.make ~name:"signature distance symmetric" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 4 40) (int_bound 3))
              (list_of_size (QCheck.Gen.int_range 4 40) (int_bound 3)))
    (fun (a, b) ->
      let sa = Dna.Strand.of_codes (Array.of_list a) in
      let sb = Dna.Strand.of_codes (Array.of_list b) in
      List.for_all
        (fun kind ->
          let xa = Clustering.Signature.compute ~q:3 kind sa in
          let xb = Clustering.Signature.compute ~q:3 kind sb in
          Clustering.Signature.distance xa xb = Clustering.Signature.distance xb xa)
        [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ])

(* ---------- scaled (flat/packed) engine ---------- *)

(* A planted workload shared by the scaled-engine tests. *)
let planted_reads ?(n_refs = 24) ?(coverage = 6) ?(error_rate = 0.06) seed =
  let r = Dna.Rng.create seed in
  let channel = Simulator.Iid_channel.create_rate ~error_rate in
  let refs = Array.init n_refs (fun _ -> Dna.Strand.random r 110) in
  let reads =
    Array.concat
      (Array.to_list
         (Array.map
            (fun s -> Array.init coverage (fun _ -> Simulator.Channel.transmit channel r s))
            refs))
  in
  let truth = Array.init (Array.length reads) (fun i -> i / coverage) in
  (reads, truth)

let test_index_matches_boxed_signatures () =
  let r = rng () in
  let reads = Array.init 40 (fun _ -> Dna.Strand.random r 80) in
  List.iter
    (fun kind ->
      let idx = Clustering.Signature.Index.build ~q:4 kind reads in
      let sigs = Array.map (Clustering.Signature.compute ~q:4 kind) reads in
      for i = 0 to 39 do
        for j = 0 to 39 do
          Alcotest.(check int)
            (Printf.sprintf "distance %d-%d" i j)
            (Clustering.Signature.distance sigs.(i) sigs.(j))
            (Clustering.Signature.Index.distance idx i j)
        done
      done)
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let test_index_sharded_build_identical () =
  let r = rng () in
  let reads = Array.init 50 (fun _ -> Dna.Strand.random r 90) in
  List.iter
    (fun kind ->
      let ref_idx = Clustering.Signature.Index.build ~domains:1 ~q:4 kind reads in
      List.iter
        (fun domains ->
          let idx = Clustering.Signature.Index.build ~domains ~q:4 kind reads in
          for i = 0 to 49 do
            for j = 0 to 49 do
              Alcotest.(check int) "sharded = serial"
                (Clustering.Signature.Index.distance ref_idx i j)
                (Clustering.Signature.Index.distance idx i j)
            done
          done)
        [ 2; 4 ])
    [ Clustering.Signature.Qgram; Clustering.Signature.Wgram ]

let scaled_params ?(domains = 1) () =
  { (Clustering.Cluster.default_params ~read_len:110 ()) with domains }

let test_scaled_identical_across_domains () =
  let reads, _ = planted_reads 4242 in
  let baseline =
    Clustering.Cluster.run_scaled (scaled_params ()) (Dna.Rng.create 5) reads
  in
  List.iter
    (fun domains ->
      let result =
        Clustering.Cluster.run_scaled (scaled_params ~domains ()) (Dna.Rng.create 5) reads
      in
      Alcotest.(check (array int))
        (Printf.sprintf "assignment identical at domains=%d" domains)
        baseline.Clustering.Cluster.assignment result.Clustering.Cluster.assignment)
    [ 2; 4 ]

let test_run_pool_matches_run_scaled () =
  let reads, _ = planted_reads 777 in
  let pool = Dna.Strand_pool.create () in
  Array.iter (fun s -> ignore (Dna.Strand_pool.add_strand pool s)) reads;
  let scaled = Clustering.Cluster.run_scaled (scaled_params ()) (Dna.Rng.create 9) reads in
  let pooled = Clustering.Cluster.run_pool (scaled_params ()) (Dna.Rng.create 9) pool in
  Alcotest.(check (array int))
    "pool views cluster identically" scaled.Clustering.Cluster.assignment
    pooled.Clustering.Cluster.assignment

(* Clustering-to-consensus handoff: the index slices [run_pool] emits
   feed [reconstruct_pool] directly, and every cluster's consensus must
   be byte-identical to the boxed reconstruction over the same slice's
   materialized views. This is the seam the pooled pipeline spine runs
   on — no boxed strand per read between clustering and decode. *)
let test_pool_slices_reconstruct_identically () =
  let reads, _ = planted_reads 2718 in
  let pool = Dna.Strand_pool.create () in
  Array.iter (fun s -> ignore (Dna.Strand_pool.add_strand pool s)) reads;
  let result = Clustering.Cluster.run_pool (scaled_params ()) (Dna.Rng.create 9) pool in
  Alcotest.(check bool) "clusters exist" true (result.Clustering.Cluster.clusters <> []);
  List.iteri
    (fun c idxs ->
      let boxed_reads = Array.map (Dna.Strand_pool.get pool) idxs in
      let pooled =
        Reconstruction.Nw_consensus.reconstruct_pool ~target_len:110 pool idxs
      in
      let boxed = Reconstruction.Nw_consensus.reconstruct ~target_len:110 boxed_reads in
      Alcotest.(check bool)
        (Printf.sprintf "cluster %d consensus byte-identical" c)
        true (Dna.Strand.equal pooled boxed);
      let pooled_e = Reconstruction.Ensemble.reconstruct_pool ~target_len:110 pool idxs in
      let boxed_e = Reconstruction.Ensemble.reconstruct ~target_len:110 boxed_reads in
      Alcotest.(check bool)
        (Printf.sprintf "cluster %d ensemble byte-identical" c)
        true (Dna.Strand.equal pooled_e boxed_e))
    result.Clustering.Cluster.clusters

let test_scaled_recovers_planted () =
  let reads, truth = planted_reads 31415 in
  let result = Clustering.Cluster.run_scaled (scaled_params ()) (Dna.Rng.create 6) reads in
  let acc = Clustering.Metrics.accuracy ~truth result.Clustering.Cluster.clusters in
  Alcotest.(check bool)
    (Printf.sprintf "accuracy %.3f >= 0.9" acc)
    true (acc >= 0.9);
  (* Structural sanity: the clusters partition the read set. *)
  let n = Array.length reads in
  let members = List.concat_map Array.to_list result.Clustering.Cluster.clusters in
  Alcotest.(check int) "partition covers reads" n
    (List.length (List.sort_uniq compare members))

let test_scaled_empty_and_singleton () =
  let empty = Clustering.Cluster.run_scaled (scaled_params ()) (Dna.Rng.create 1) [||] in
  Alcotest.(check int) "no clusters" 0 (List.length empty.Clustering.Cluster.clusters);
  let one =
    Clustering.Cluster.run_scaled (scaled_params ()) (Dna.Rng.create 1)
      [| Dna.Strand.random (rng ()) 110 |]
  in
  Alcotest.(check int) "one cluster" 1 (List.length one.Clustering.Cluster.clusters)

let () =
  Alcotest.run "clustering"
    [
      ( "union-find",
        [
          Alcotest.test_case "basics" `Quick test_uf_basics;
          Alcotest.test_case "idempotent union" `Quick test_uf_idempotent_union;
          Alcotest.test_case "clusters partition" `Quick test_uf_clusters_partition;
        ] );
      ( "signature",
        [
          Alcotest.test_case "identical reads" `Quick test_signature_identical_reads;
          Alcotest.test_case "separation" `Quick test_signature_separation;
          Alcotest.test_case "mixed kinds rejected" `Quick test_signature_mixed_kinds_rejected;
          Alcotest.test_case "qgram presence" `Quick test_signature_qgram_is_presence;
          Alcotest.test_case "wgram positions" `Quick test_signature_wgram_positions;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "recovers planted" `Quick test_clustering_recovers_planted;
          Alcotest.test_case "noiseless exact" `Quick test_clustering_noiseless_exact;
          Alcotest.test_case "empty input" `Quick test_clustering_empty_input;
          Alcotest.test_case "singleton input" `Quick test_clustering_singleton_input;
          Alcotest.test_case "stats populated" `Quick test_clustering_stats_populated;
          Alcotest.test_case "parallel same quality" `Quick test_clustering_parallel_same_quality;
          Alcotest.test_case "parallel identical assignment" `Quick
            test_clustering_parallel_identical_assignment;
          Alcotest.test_case "read_clusters total" `Quick test_read_clusters_materialization;
        ] );
      ( "scaled",
        [
          Alcotest.test_case "index = boxed signatures" `Quick
            test_index_matches_boxed_signatures;
          Alcotest.test_case "index sharded build identical" `Quick
            test_index_sharded_build_identical;
          Alcotest.test_case "identical across domains" `Quick
            test_scaled_identical_across_domains;
          Alcotest.test_case "run_pool = run_scaled" `Quick test_run_pool_matches_run_scaled;
          Alcotest.test_case "pool slices reconstruct identically" `Quick
            test_pool_slices_reconstruct_identically;
          Alcotest.test_case "recovers planted" `Quick test_scaled_recovers_planted;
          Alcotest.test_case "empty/singleton" `Quick test_scaled_empty_and_singleton;
        ] );
      ( "auto-config",
        [
          Alcotest.test_case "thresholds ordered" `Quick test_auto_config_thresholds_ordered;
          Alcotest.test_case "separates modes" `Quick test_auto_config_separates_modes;
          Alcotest.test_case "figure5 series" `Quick test_figure5_series_sorted;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "perfect clustering" `Quick test_metrics_perfect_clustering;
          Alcotest.test_case "split cluster" `Quick test_metrics_split_cluster;
          Alcotest.test_case "merged cluster" `Quick test_metrics_merged_cluster;
          Alcotest.test_case "foreign element" `Quick test_metrics_foreign_element_blocks_recovery;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_uf_union_monotone; prop_signature_distance_symmetric ] );
    ]
