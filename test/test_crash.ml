(* The crash-consistency sweep as a tier-1 test: replay a scripted
   put/overwrite/delete/compact workload once per filesystem fault
   point with a simulated kill landing there, reopen, and check that
   acked writes survive bit-identically, acked deletes stay deleted,
   the in-flight operation is atomic and no temp/orphan debris remains.
   CI's crash-matrix job runs the same sweep at a second seed. *)

let test_crash_matrix () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "dnastore_crash_%d" (Unix.getpid ()))
  in
  let o = Crash_harness.run ~seed:1 ~dir () in
  Alcotest.(check bool)
    (Printf.sprintf "sweep traverses a full workload (%d points)" o.Crash_harness.total_points)
    true
    (o.Crash_harness.total_points > 30);
  Alcotest.(check int) "one run per fault point" o.Crash_harness.total_points o.Crash_harness.runs;
  if o.Crash_harness.failures <> [] then Alcotest.fail (Crash_harness.render o)

let () =
  Alcotest.run "crash"
    [ ("matrix", [ Alcotest.test_case "kill at every fault point" `Slow test_crash_matrix ]) ]
