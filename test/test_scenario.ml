(* Scenario engine: new channel models (aging, Gilbert-Elliott bursts,
   trace replay), the PCR determinism/bias contracts, stack composition,
   JSON round-trips, and end-to-end replay through Scenario_run. *)

let strand_eq = Alcotest.testable (Fmt.of_to_string Dna.Strand.to_string) Dna.Strand.equal

(* ---------- pooled paths: every new channel must replay its boxed
   path draw for draw (the Channel.create contract) ---------- *)

let check_pool_matches_boxed
    ?(params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 4)) name
    channel =
  let strands = Array.init 12 (fun i -> Dna.Strand.random (Dna.Rng.create (100 + i)) 90) in
  let boxed = Simulator.Sequencer.sequence ~domains:1 params channel (Dna.Rng.create 55) strands in
  let pool = Dna.Strand_pool.create () in
  let origins = Simulator.Sequencer.sequence_pool params channel (Dna.Rng.create 55) strands ~pool in
  Alcotest.(check int) (name ^ ": read count") (Array.length boxed) (Array.length origins);
  Array.iteri
    (fun i (r : Simulator.Sequencer.read) ->
      Alcotest.(check int) (Printf.sprintf "%s: origin %d" name i) r.origin origins.(i);
      Alcotest.check strand_eq (Printf.sprintf "%s: read %d" name i) r.seq
        (Dna.Strand_pool.get pool i))
    boxed

let test_pool_aging () = check_pool_matches_boxed "aging" (Simulator.Aging_channel.create ())

let test_pool_burst () = check_pool_matches_boxed "burst" (Simulator.Burst_channel.create ())

let fitted_profile () =
  let path = Filename.temp_file "test_trace" ".fastq" in
  Simulator.Trace_channel.write_synthetic ~seed:7 path;
  let profile =
    match Simulator.Trace_channel.fit path with
    | Ok p -> p
    | Error e -> Alcotest.failf "trace fit: %s" e
  in
  Sys.remove path;
  profile

let test_pool_trace () =
  check_pool_matches_boxed "trace" (Simulator.Trace_channel.create (fitted_profile ()))

let test_pool_composed_stack () =
  (* A chained stack (burst after iid) built by the engine keeps the
     contract too: intermediates boxed, last stage pooled. *)
  let sc =
    {
      Simulator.Scenario.name = "stack";
      description = "";
      stages =
        [
          Simulator.Scenario.Read (Simulator.Scenario.Iid 0.02);
          Simulator.Scenario.Read (Simulator.Scenario.Burst Simulator.Burst_channel.default_params);
        ];
      floors = [];
    }
  in
  match Simulator.Scenario.build sc with
  | Error e -> Alcotest.fail e
  | Ok b -> check_pool_matches_boxed "iid+burst" b.Simulator.Scenario.channel

(* After a transmit, both paths must leave the rng in the same state —
   equality of the next draw is the sharpest cheap probe. *)
let test_rng_state_after_transmit () =
  List.iter
    (fun (name, ch) ->
      let s = Dna.Strand.random (Dna.Rng.create 3) 80 in
      let r1 = Dna.Rng.create 9 and r2 = Dna.Rng.create 9 in
      ignore (Simulator.Channel.transmit ch r1 s);
      let pool = Dna.Strand_pool.create () in
      Simulator.Channel.transmit_into ch r2 s pool;
      Alcotest.(check int)
        (name ^ ": rng state after transmit")
        (Dna.Rng.int r1 1_000_000) (Dna.Rng.int r2 1_000_000))
    [
      ("aging", Simulator.Aging_channel.create ());
      ("burst", Simulator.Burst_channel.create ());
      ("trace", Simulator.Trace_channel.create (fitted_profile ()));
    ]

(* ---------- aging ---------- *)

let test_aging_math () =
  let p = Simulator.Aging_channel.default_params in
  let c = Simulator.Aging_channel.cumulative p in
  Alcotest.(check bool) "cumulative positive" true (c > 0.0);
  Alcotest.(check (float 1e-12))
    "survival" (exp (-.c))
    (Simulator.Aging_channel.survival p);
  Alcotest.(check (float 1e-12))
    "dropout + survival = 1" 1.0
    (Simulator.Aging_channel.survival p +. Simulator.Aging_channel.dropout p);
  (* Doubling years doubles the exposure. *)
  Alcotest.(check (float 1e-12))
    "linear in years" (2.0 *. c)
    (Simulator.Aging_channel.cumulative { p with Simulator.Aging_channel.years = 2.0 *. p.years })

let test_aging_dropout_rate () =
  (* At high years the pool thins at the predicted rate. *)
  let p = { Simulator.Aging_channel.default_params with Simulator.Aging_channel.years = 20.0 } in
  let strands = Array.init 2000 (fun i -> Dna.Strand.random (Dna.Rng.create i) 60) in
  let aged = Simulator.Aging_channel.age_pool ~params:p (Dna.Rng.create 5) strands in
  let kept = float_of_int (Array.length aged) /. 2000.0 in
  let expected = Simulator.Aging_channel.survival p in
  Alcotest.(check bool)
    (Printf.sprintf "kept %.3f ~ survival %.3f" kept expected)
    true
    (abs_float (kept -. expected) < 0.05)

let test_aging_deterministic () =
  let strands = Array.init 50 (fun i -> Dna.Strand.random (Dna.Rng.create i) 60) in
  let a = Simulator.Aging_channel.age_pool (Dna.Rng.create 11) strands in
  let b = Simulator.Aging_channel.age_pool (Dna.Rng.create 11) strands in
  Alcotest.(check int) "same pool size" (Array.length a) (Array.length b);
  Array.iteri (fun i s -> Alcotest.check strand_eq "same strand" s b.(i)) a

let test_aging_zero_years_identity () =
  let p = { Simulator.Aging_channel.default_params with Simulator.Aging_channel.years = 0.0 } in
  let s = Dna.Strand.random (Dna.Rng.create 2) 100 in
  Alcotest.check strand_eq "no decay at t=0" s
    (Simulator.Aging_channel.transmit p (Dna.Rng.create 3) s);
  Alcotest.(check (float 0.0)) "no dropout at t=0" 0.0 (Simulator.Aging_channel.dropout p)

(* ---------- bursts ---------- *)

let test_burst_stationary () =
  let p = Simulator.Burst_channel.default_params in
  let b = Simulator.Burst_channel.stationary_bad p in
  Alcotest.(check (float 1e-12))
    "stationary formula"
    (p.Simulator.Burst_channel.p_enter
    /. (p.Simulator.Burst_channel.p_enter +. p.Simulator.Burst_channel.p_exit))
    b;
  Alcotest.(check (float 1e-12))
    "mean rate mixes states"
    ((b *. p.Simulator.Burst_channel.p_bad) +. ((1.0 -. b) *. p.Simulator.Burst_channel.p_good))
    (Simulator.Burst_channel.mean_error_rate p)

let test_burst_identity_when_quiet () =
  (* Never entering the bad state and a zero good-state rate is the
     identity channel. *)
  let p =
    {
      Simulator.Burst_channel.default_params with
      Simulator.Burst_channel.p_enter = 0.0;
      p_good = 0.0;
    }
  in
  let s = Dna.Strand.random (Dna.Rng.create 4) 150 in
  Alcotest.check strand_eq "identity" s (Simulator.Burst_channel.transmit p (Dna.Rng.create 5) s)

let test_burst_errors_cluster () =
  (* Errors must arrive in runs: compare the realized error profile's
     clustering against an iid channel of the same mean rate by counting
     adjacent-error pairs on substitution-only versions. *)
  let p =
    {
      Simulator.Burst_channel.p_enter = 0.02;
      p_exit = 0.2;
      p_good = 0.0;
      p_bad = 0.8;
      bad_del = 0.0;
      bad_ins = 0.0 (* substitutions only: positions stay aligned *);
    }
  in
  let rate = Simulator.Burst_channel.mean_error_rate p in
  let len = 400 and trials = 200 in
  let rng = Dna.Rng.create 6 in
  let adjacent channel =
    let pairs = ref 0 and errors = ref 0 in
    for _ = 1 to trials do
      let s = Dna.Strand.random rng len in
      let out = Simulator.Channel.transmit channel rng s in
      let prev = ref false in
      for i = 0 to len - 1 do
        let e =
          Dna.Strand.length out > i
          && not (Dna.Strand.unsafe_get_code out i = Dna.Strand.unsafe_get_code s i)
        in
        if e then incr errors;
        if e && !prev then incr pairs;
        prev := e
      done
    done;
    (float_of_int !pairs, float_of_int !errors)
  in
  let bp, be = adjacent (Simulator.Burst_channel.create ~params:p ()) in
  let ip, ie =
    adjacent
      (Simulator.Iid_channel.create
         { Simulator.Iid_channel.p_ins = 0.0; p_del = 0.0; p_sub = rate })
  in
  (* Similar total error mass, far more adjacency under bursts. *)
  Alcotest.(check bool)
    (Printf.sprintf "comparable error mass (%.0f vs %.0f)" be ie)
    true
    (be > 0.5 *. ie && be < 2.0 *. ie);
  Alcotest.(check bool)
    (Printf.sprintf "bursty adjacency (%.0f vs %.0f pairs)" bp ip)
    true
    (bp > 3.0 *. ip)

(* ---------- trace replay ---------- *)

let test_trace_fit_matches_empirical () =
  let path = Filename.temp_file "test_trace" ".fastq" in
  Simulator.Trace_channel.write_synthetic ~seed:21 path;
  let profile =
    match Simulator.Trace_channel.fit path with
    | Ok p -> p
    | Error e -> Alcotest.failf "fit: %s" e
  in
  let quals, errors = Dna.Fastq.fold_file path ~init:[] ~f:(fun acc r -> r.Dna.Fastq.qual :: acc) in
  Sys.remove path;
  Alcotest.(check int) "no parse errors" 0 (List.length errors);
  let sum, n =
    List.fold_left
      (fun (s, n) q ->
        ( Array.fold_left (fun s qi -> s +. Simulator.Trace_channel.phred_to_p qi) s q,
          n + Array.length q ))
      (0.0, 0) quals
  in
  let empirical = sum /. float_of_int n in
  Alcotest.(check (float 1e-9))
    "fitted mean = empirical per-base rate" empirical
    profile.Simulator.Trace_channel.mean_rate;
  (* And the channel's realized rate lands near the fitted rate. *)
  let ch = Simulator.Trace_channel.create profile in
  let prof = Simulator.Channel.measure_error_profile ch (Dna.Rng.create 8) ~strand_len:120 ~trials:400 in
  let realized = Array.fold_left ( +. ) 0.0 prof /. float_of_int (Array.length prof) in
  Alcotest.(check bool)
    (Printf.sprintf "realized %.4f within 35%% of fitted %.4f" realized
       profile.Simulator.Trace_channel.mean_rate)
    true
    (abs_float (realized -. profile.Simulator.Trace_channel.mean_rate)
    < 0.35 *. profile.Simulator.Trace_channel.mean_rate)

let test_trace_fit_empty () =
  (match Simulator.Trace_channel.fit "/nonexistent/trace.fastq" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fit of a missing file must fail");
  match Simulator.Trace_channel.fit_qualities [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "fit of no reads must fail"

(* ---------- PCR determinism and bias ---------- *)

let test_pcr_cycles0_identity () =
  let strands = Array.init 7 (fun i -> Dna.Strand.random (Dna.Rng.create i) 40) in
  let pop =
    Simulator.Pcr.amplify
      ~params:{ Simulator.Pcr.default_params with Simulator.Pcr.cycles = 0 }
      (Dna.Rng.create 5) strands
  in
  Alcotest.(check int) "no new variants" 7 (List.length pop);
  List.iteri
    (fun i (s, c) ->
      Alcotest.(check int) "count 1" 1 c;
      Alcotest.check strand_eq "same molecule, same order" strands.(i) s)
    pop

let test_pcr_family_stream_independence () =
  (* A family's amplification draws must not depend on what else is in
     the tube: family a amplifies identically whether it shares the
     pool with b or with c. *)
  let params =
    { Simulator.Pcr.default_params with Simulator.Pcr.cycles = 8; p_sub = 0.004 }
  in
  let a = Dna.Strand.random (Dna.Rng.create 1) 60 in
  let b = Dna.Strand.random (Dna.Rng.create 2) 60 in
  let c = Dna.Strand.random (Dna.Rng.create 3) 60 in
  let solo = Simulator.Pcr.amplify ~params (Dna.Rng.create 9) [| a |] in
  let with_b = Simulator.Pcr.amplify ~params (Dna.Rng.create 9) [| a; b |] in
  let with_c = Simulator.Pcr.amplify ~params (Dna.Rng.create 9) [| a; c |] in
  let prefix n l = List.filteri (fun i _ -> i < n) l in
  let check_prefix name other =
    let p = prefix (List.length solo) other in
    Alcotest.(check int) (name ^ ": family size") (List.length solo) (List.length p);
    List.iter2
      (fun (s1, c1) (s2, c2) ->
        Alcotest.check strand_eq (name ^ ": variant") s1 s2;
        Alcotest.(check int) (name ^ ": count") c1 c2)
      solo p
  in
  check_prefix "a|b" with_b;
  check_prefix "a|c" with_c

let test_pcr_bias_lognormal_skew () =
  (* With p_sub = 0 every family stays one variant, so per-variant
     abundance is per-origin coverage; bias must spread it. *)
  let no_sub sd =
    { Simulator.Pcr.default_params with Simulator.Pcr.cycles = 10; p_sub = 0.0; bias_sd = sd }
  in
  let strands = Array.init 60 (fun i -> Dna.Strand.random (Dna.Rng.create i) 50) in
  let skew sd =
    Simulator.Pcr.abundance_skew
      (Simulator.Pcr.amplify ~params:(no_sub sd) (Dna.Rng.create 4) strands)
  in
  let s0 = skew 0.0 and s4 = skew 0.4 in
  Alcotest.(check bool)
    (Printf.sprintf "bias broadens coverage (%.3f -> %.3f)" s0 s4)
    true (s4 > 1.5 *. s0)

let test_pcr_amplify_sample_shape () =
  let strands = Array.init 10 (fun i -> Dna.Strand.random (Dna.Rng.create i) 30) in
  let out =
    Simulator.Pcr.amplify_sample
      ~params:{ Simulator.Pcr.default_params with Simulator.Pcr.cycles = 0 }
      ~depth_factor:3.0 (Dna.Rng.create 7) strands
  in
  Alcotest.(check int) "depth_factor scales the draw" 30 (Array.length out);
  Array.iter
    (fun s ->
      Alcotest.(check bool) "every draw is an input molecule" true
        (Array.exists (Dna.Strand.equal s) strands))
    out;
  Alcotest.(check int) "empty pool stays empty" 0
    (Array.length (Simulator.Pcr.amplify_sample (Dna.Rng.create 7) [||]))

(* ---------- scenario JSON ---------- *)

let test_scenario_json_roundtrip () =
  List.iter
    (fun sc ->
      match Simulator.Scenario.of_string (Simulator.Scenario.to_string sc) with
      | Error e -> Alcotest.failf "%s: %s" sc.Simulator.Scenario.name e
      | Ok sc' ->
          Alcotest.(check bool) (sc.Simulator.Scenario.name ^ ": round-trip") true (sc = sc'))
    Simulator.Scenario.builtins

let test_scenario_json_rejects_junk () =
  List.iter
    (fun s ->
      match Simulator.Scenario.of_string s with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted junk: %s" s)
    [
      "{";
      "{}";
      {|{"name": "x", "description": "", "stages": [{"stage": "warp"}], "floors": []}|};
      {|{"name": "x", "description": "", "stages": [{"stage": "read", "channel": "q"}], "floors": []}|};
      {|{"name": "", "description": "", "stages": [], "floors": []}|};
    ]

let test_scenario_trace_path_injection () =
  let sc = Option.get (Simulator.Scenario.find "trace-replay") in
  Alcotest.(check bool) "has trace" true (Simulator.Scenario.has_trace sc);
  (match Simulator.Scenario.build sc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace path must not build");
  let path = Filename.temp_file "test_trace" ".fastq" in
  Simulator.Trace_channel.write_synthetic ~seed:7 path;
  let sc = Simulator.Scenario.with_trace_path sc path in
  (match Simulator.Scenario.build sc with
  | Error e -> Alcotest.failf "build after injection: %s" e
  | Ok b ->
      Alcotest.(check bool) "configured rate from fit" true
        (b.Simulator.Scenario.configured_error_rate > 0.0));
  Sys.remove path

(* ---------- end-to-end: Scenario_run ---------- *)

let payload n =
  let r = Dna.Rng.create 0xBEEF in
  Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256))

let run_ok ?fault ~seed sc =
  match Dnastore.Scenario_run.run_full ?fault ~seed ~data:(payload 600) sc with
  | Ok r -> r
  | Error e -> Alcotest.failf "run: %s" e

let test_scenario_replay_bit_identical () =
  (* The acceptance stack: aging + PCR bias + bursts, composed with a
     fault plan. Same (scenario, fault, seed) twice => bit-identical. *)
  let sc = Option.get (Simulator.Scenario.find "archival-decade") in
  List.iter
    (fun fault ->
      List.iter
        (fun seed ->
          let o1, p1 = run_ok ~fault ~seed sc in
          let o2, p2 = run_ok ~fault ~seed sc in
          Alcotest.(check bool)
            (Printf.sprintf "%s seed %d: same recovery" fault seed)
            true
            (o1.Dnastore.Scenario_run.recovered_fraction
            = o2.Dnastore.Scenario_run.recovered_fraction);
          match (p1.Dnastore.Pipeline.file, p2.Dnastore.Pipeline.file) with
          | Some a, Some b ->
              Alcotest.(check bool)
                (Printf.sprintf "%s seed %d: same bytes" fault seed)
                true (Bytes.equal a b)
          | None, None -> ()
          | _ -> Alcotest.failf "%s seed %d: replay diverged in outcome shape" fault seed)
        [ 1; 2 ])
    [ "clean"; "dropout-10" ]

let test_scenario_seeds_diverge () =
  (* Different seeds must corrupt differently: the simulated read sets
     of the same stack under seeds 1 and 2 differ. *)
  let sc = Option.get (Simulator.Scenario.find "nanopore-burst") in
  let built =
    match Simulator.Scenario.build sc with Ok b -> b | Error e -> Alcotest.fail e
  in
  let strands = Array.init 10 (fun i -> Dna.Strand.random (Dna.Rng.create i) 80) in
  let params = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 4) in
  let reads seed =
    Simulator.Sequencer.sequence ~domains:1 params built.Simulator.Scenario.channel
      (Dna.Rng.create seed) strands
  in
  let a = reads 1 and b = reads 2 in
  let same =
    Array.length a = Array.length b
    && Array.for_all2 (fun (x : Simulator.Sequencer.read) (y : Simulator.Sequencer.read) ->
           Dna.Strand.equal x.seq y.seq) a b
  in
  Alcotest.(check bool) "seed 1 and seed 2 reads differ" false same

let test_scenario_domains_invariant () =
  (* Pool stages draw from the ambient rng before the parallel region,
     and parallel synthesis splits one stream per strand, so any two
     worker counts > 1 give the identical outcome. (domains = 1 is the
     historical serial draw order and differs by design.) *)
  let sc = Option.get (Simulator.Scenario.find "aging-5y") in
  let o1, p1 =
    match Dnastore.Scenario_run.run_full ~domains:2 ~seed:3 ~data:(payload 600) sc with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let o2, p2 =
    match Dnastore.Scenario_run.run_full ~domains:3 ~seed:3 ~data:(payload 600) sc with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "same recovery across domains" true
    (o1.Dnastore.Scenario_run.recovered_fraction = o2.Dnastore.Scenario_run.recovered_fraction);
  match (p1.Dnastore.Pipeline.file, p2.Dnastore.Pipeline.file) with
  | Some a, Some b -> Alcotest.(check bool) "same bytes across domains" true (Bytes.equal a b)
  | None, None -> ()
  | _ -> Alcotest.fail "domain count changed the outcome shape"

let test_scenario_unknown_fault () =
  let sc = Option.get (Simulator.Scenario.find "baseline-iid") in
  (match Dnastore.Scenario_run.run ~fault:"no-such-fault" ~seed:1 ~data:(payload 100) sc with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown fault must be an error");
  let bad = { sc with Simulator.Scenario.name = "bad"; floors = [ ("no-such-fault", 0.5) ] } in
  match
    Dnastore.Scenario_run.sweep ~faults:[ "clean" ] ~seeds:[ 1 ] ~data:(payload 100) [ bad ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "floor naming an unknown fault must fail the sweep"

let test_scenario_clean_floors () =
  (* The two read-only stacks recover fully on a clean run at test
     scale; their outcome records carry coherent rate accounting. *)
  List.iter
    (fun name ->
      let sc = Option.get (Simulator.Scenario.find name) in
      let o, _ = run_ok ~seed:1 sc in
      Alcotest.(check bool) (name ^ ": full recovery") true
        (o.Dnastore.Scenario_run.recovered_fraction = 1.0);
      Alcotest.(check bool) (name ^ ": passed its floor") true o.Dnastore.Scenario_run.passed;
      Alcotest.(check bool) (name ^ ": realized rate sane") true
        (o.Dnastore.Scenario_run.realized_error_rate > 0.0
        && o.Dnastore.Scenario_run.realized_error_rate
           < 3.0 *. o.Dnastore.Scenario_run.configured_error_rate))
    [ "baseline-iid"; "nanopore-burst" ]

let test_pipeline_prepare_hook () =
  (* The ?prepare hook: identity is a no-op; a raising prepare degrades
     like a simulate crash instead of raising out of run. *)
  let data = payload 400 in
  let base = Dnastore.Pipeline.run (Dna.Rng.create 7) data in
  let id = Dnastore.Pipeline.run ~prepare:(fun _ s -> s) (Dna.Rng.create 7) data in
  Alcotest.(check bool) "identity prepare changes nothing" true
    (match (base.Dnastore.Pipeline.file, id.Dnastore.Pipeline.file) with
    | Some a, Some b -> Bytes.equal a b
    | _ -> false);
  let boom = Dnastore.Pipeline.run ~prepare:(fun _ _ -> failwith "boom") (Dna.Rng.create 7) data in
  Alcotest.(check bool) "raising prepare degrades" true
    (List.exists
       (fun (s, _) -> s = Dnastore.Faults.Simulate)
       boom.Dnastore.Pipeline.stage_failures)

let () =
  Alcotest.run "scenario"
    [
      ( "pooled paths",
        [
          Alcotest.test_case "aging = boxed" `Quick test_pool_aging;
          Alcotest.test_case "burst = boxed" `Quick test_pool_burst;
          Alcotest.test_case "trace = boxed" `Quick test_pool_trace;
          Alcotest.test_case "composed stack = boxed" `Quick test_pool_composed_stack;
          Alcotest.test_case "rng state equal after transmit" `Quick
            test_rng_state_after_transmit;
        ] );
      ( "aging",
        [
          Alcotest.test_case "decay math" `Quick test_aging_math;
          Alcotest.test_case "dropout rate" `Quick test_aging_dropout_rate;
          Alcotest.test_case "deterministic" `Quick test_aging_deterministic;
          Alcotest.test_case "zero years identity" `Quick test_aging_zero_years_identity;
        ] );
      ( "burst",
        [
          Alcotest.test_case "stationary state" `Quick test_burst_stationary;
          Alcotest.test_case "quiet = identity" `Quick test_burst_identity_when_quiet;
          Alcotest.test_case "errors cluster" `Quick test_burst_errors_cluster;
        ] );
      ( "trace",
        [
          Alcotest.test_case "fit matches empirical" `Quick test_trace_fit_matches_empirical;
          Alcotest.test_case "fit rejects empty" `Quick test_trace_fit_empty;
        ] );
      ( "pcr",
        [
          Alcotest.test_case "cycles 0 identity" `Quick test_pcr_cycles0_identity;
          Alcotest.test_case "family stream independence" `Quick
            test_pcr_family_stream_independence;
          Alcotest.test_case "bias broadens coverage" `Quick test_pcr_bias_lognormal_skew;
          Alcotest.test_case "amplify_sample shape" `Quick test_pcr_amplify_sample_shape;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip builtins" `Quick test_scenario_json_roundtrip;
          Alcotest.test_case "rejects junk" `Quick test_scenario_json_rejects_junk;
          Alcotest.test_case "trace path injection" `Quick test_scenario_trace_path_injection;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "replay bit-identical" `Quick test_scenario_replay_bit_identical;
          Alcotest.test_case "seeds diverge" `Quick test_scenario_seeds_diverge;
          Alcotest.test_case "domains invariant" `Quick test_scenario_domains_invariant;
          Alcotest.test_case "unknown fault rejected" `Quick test_scenario_unknown_fault;
          Alcotest.test_case "clean floors" `Quick test_scenario_clean_floors;
          Alcotest.test_case "pipeline prepare hook" `Quick test_pipeline_prepare_hook;
        ] );
    ]
