(* The persistent sharded object store: container format, durability
   across reopen, rewritable random access, compaction, the LRU cache,
   and the wetlab serialization formats it stores shards in. *)

let random_file r n = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256))

let temp_store_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "dnastore_test_%d_%d" (Unix.getpid ()) !counter)
    in
    dir

let file_size path = (Unix.stat path).Unix.st_size

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

let replace_substring ~needle ~into haystack =
  let buf = Buffer.create (String.length haystack) in
  let n = String.length needle in
  let i = ref 0 in
  while !i < String.length haystack do
    if !i + n <= String.length haystack && String.sub haystack !i n = needle then begin
      Buffer.add_string buf into;
      i := !i + n
    end
    else begin
      Buffer.add_char buf haystack.[!i];
      incr i
    end
  done;
  Buffer.contents buf

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" label (Store.error_message e))

let test_config =
  (* A mild channel keeps the wetlab read path fast in unit tests. *)
  { Store.default_config with Store.error_rate = 0.03; cache_objects = 4 }

(* ---------- JSON layer ---------- *)

let test_json_round_trip () =
  let v =
    Store.Json.Obj
      [
        ("int", Store.Json.Int 42);
        ("neg", Store.Json.Int (-7));
        ("float", Store.Json.Float 0.0625);
        ("bool", Store.Json.Bool true);
        ("null", Store.Json.Null);
        ("tricky", Store.Json.String "a\"b\\c\nd\te\x01f");
        ( "list",
          Store.Json.List [ Store.Json.Int 1; Store.Json.String "two"; Store.Json.List [] ] );
        ("empty", Store.Json.Obj []);
      ]
  in
  match Store.Json.of_string (Store.Json.to_string v) with
  | Error msg -> Alcotest.fail ("round trip: " ^ msg)
  | Ok v' -> Alcotest.(check bool) "round trips" true (v = v')

let test_json_rejects_malformed () =
  List.iter
    (fun s ->
      match Store.Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parsed malformed %S" s)
      | Error _ -> ())
    [ "{"; "[1,]"; "{\"a\":}"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nul"; "" ]

(* ---------- durability ---------- *)

let test_store_survives_reopen () =
  List.iter
    (fun seed ->
      let r = Dna.Rng.create (900 + seed) in
      let a = random_file r 300 and b = random_file r 450 in
      let dir = temp_store_dir () in
      let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed ()) in
      ok_or_fail "put a" (Store.put store ~key:"a" a);
      ok_or_fail "put b" (Store.put store ~key:"b" b);
      (* A fresh handle must see only what reached the disk. *)
      let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
      Alcotest.(check (list string)) "keys" [ "a"; "b" ] (List.sort compare (Store.keys store));
      let a' = ok_or_fail "get a" (Store.get store ~key:"a") in
      let b' = ok_or_fail "get b" (Store.get store ~key:"b") in
      Alcotest.(check bytes) "a byte-identical" a a';
      Alcotest.(check bytes) "b byte-identical" b b')
    [ 1; 2 ]

let test_init_refuses_existing () =
  let dir = temp_store_dir () in
  let _ = ok_or_fail "init" (Store.init ~dir ~seed:7 ()) in
  match Store.init ~dir ~seed:8 () with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "re-init over an existing store succeeded"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Store.error_message e)

let test_no_tmp_leftovers () =
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:3 ()) in
  ok_or_fail "put" (Store.put store ~key:"k" (random_file (Dna.Rng.create 31) 200));
  ok_or_fail "delete" (Store.delete store ~key:"k");
  let _ = ok_or_fail "compact" (Store.compact store) in
  let leftovers =
    List.filter
      (fun f -> Filename.check_suffix f ".tmp")
      (Array.to_list (Sys.readdir dir) @ Array.to_list (Sys.readdir (Filename.concat dir "shards")))
  in
  Alcotest.(check (list string)) "no temp files survive" [] leftovers

(* ---------- rewritable access and compaction ---------- *)

let test_delete_compact_reclaims () =
  List.iter
    (fun seed ->
      let r = Dna.Rng.create (7000 + seed) in
      let a = random_file r 400 and b = random_file r 250 in
      let dir = temp_store_dir () in
      let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed ()) in
      ok_or_fail "put a" (Store.put store ~key:"a" a);
      ok_or_fail "put b" (Store.put store ~key:"b" b);
      let pair_a =
        match Store.object_pair store ~key:"a" with
        | Some p -> p
        | None -> Alcotest.fail "no pair for a"
      in
      Alcotest.(check bool) "pair reserved while live" true (Store.pair_reserved store pair_a);
      let bytes_before =
        List.fold_left (fun acc f -> acc + file_size f) 0 (Store.shard_files store)
      in
      ok_or_fail "delete a" (Store.delete store ~key:"a");
      (match Store.get store ~key:"a" with
      | Error (Store.Key_not_found "a") -> ()
      | Ok _ -> Alcotest.fail "get of deleted key succeeded"
      | Error e -> Alcotest.fail ("unexpected error: " ^ Store.error_message e));
      (* Retired, not reclaimed: the molecules are still in the shard. *)
      Alcotest.(check bool) "pair retired, still reserved" true (Store.pair_reserved store pair_a);
      Alcotest.(check int) "one retired pair" 1 (Store.stats store).Store.retired_primer_pairs;
      let cstats = ok_or_fail "compact" (Store.compact store) in
      Alcotest.(check int) "one pair reclaimed" 1 cstats.Store.primer_pairs_reclaimed;
      Alcotest.(check bool) "fewer strands after compaction" true
        (cstats.Store.strands_after < cstats.Store.strands_before);
      let bytes_after =
        List.fold_left (fun acc f -> acc + file_size f) 0 (Store.shard_files store)
      in
      Alcotest.(check bool) "shard files shrink" true (bytes_after < bytes_before);
      Alcotest.(check bool) "pair released after compaction" false
        (Store.pair_reserved store pair_a);
      (* The freed primer pair must be usable by a later put. *)
      ok_or_fail "put c" (Store.put store ~key:"c" (random_file r 120));
      (* Durability of the compacted state. *)
      let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
      let b' = ok_or_fail "get b after compaction" (Store.get store ~key:"b") in
      Alcotest.(check bytes) "b intact after compaction" b b';
      match Store.get store ~key:"a" with
      | Error (Store.Key_not_found _) -> ()
      | _ -> Alcotest.fail "deleted key resurfaced after reopen")
    [ 1; 2 ]

let test_overwrite_appends_version () =
  let r = Dna.Rng.create 4242 in
  let v1 = random_file r 300 and v2 = random_file r 350 in
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:11 ()) in
  ok_or_fail "put" (Store.put store ~key:"doc" v1);
  (match Store.put store ~key:"doc" v1 with
  | Error (Store.Duplicate_key "doc") -> ()
  | _ -> Alcotest.fail "duplicate put not rejected");
  ok_or_fail "overwrite" (Store.overwrite store ~key:"doc" v2);
  Alcotest.(check int) "old pair retired" 1 (Store.stats store).Store.retired_primer_pairs;
  let got = ok_or_fail "get" (Store.get ~use_cache:false store ~key:"doc") in
  Alcotest.(check bytes) "overwrite wins" v2 got;
  let _ = ok_or_fail "compact" (Store.compact store) in
  let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
  let got = ok_or_fail "get after compact+reopen" (Store.get store ~key:"doc") in
  Alcotest.(check bytes) "new version survives compaction" v2 got;
  match Store.overwrite store ~key:"missing" v1 with
  | Error (Store.Key_not_found _) -> ()
  | _ -> Alcotest.fail "overwrite of a missing key succeeded"

(* ---------- batched access ---------- *)

let test_get_batch_matches_sequential () =
  let r = Dna.Rng.create 808 in
  let dir = temp_store_dir () in
  (* A small shard target spreads the objects over several shards, so
     the batch exercises the per-shard grouping. *)
  let config = { test_config with Store.shard_target_strands = 60 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:5 ()) in
  let keys = List.init 6 (fun i -> Printf.sprintf "obj%d" i) in
  let payloads = List.map (fun key -> (key, random_file r (150 + (37 * String.length key)))) keys in
  List.iter (fun (key, data) -> ok_or_fail ("put " ^ key) (Store.put store ~key data)) payloads;
  Alcotest.(check bool) "objects spread over several shards" true
    ((Store.stats store).Store.n_shards > 1);
  let sequential =
    List.map (fun key -> (key, ok_or_fail ("get " ^ key) (Store.get ~use_cache:false store ~key))) keys
  in
  let batched = Store.get_batch ~domains:2 ~use_cache:false store keys in
  List.iter2
    (fun (k1, seq_bytes) (k2, batch_result) ->
      Alcotest.(check string) "batch preserves input order" k1 k2;
      let batch_bytes = ok_or_fail ("batched get " ^ k2) batch_result in
      Alcotest.(check bytes) ("batch equals sequential for " ^ k1) seq_bytes batch_bytes;
      Alcotest.(check bytes) ("recovers original " ^ k1) (List.assoc k1 payloads) batch_bytes)
    sequential batched;
  (* Unknown keys fail individually without poisoning the batch. *)
  match Store.get_batch store [ "obj0"; "ghost" ] with
  | [ (_, Ok _); (_, Error (Store.Key_not_found "ghost")) ] -> ()
  | _ -> Alcotest.fail "mixed batch did not isolate the missing key"

let test_get_batch_thousand_keys () =
  (* Regression for the O(n^2) accumulators (list-append task building
     and assoc-list joins): a 1k-entry batch cycling a handful of real
     keys plus misses must come back in input order, with duplicate
     entries equal and every ghost key failing individually. Each
     unique key decodes once, so this stays fast. *)
  let r = Dna.Rng.create 909 in
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:17 ()) in
  let real = List.init 5 (fun i -> Printf.sprintf "k%d" i) in
  let payloads = List.map (fun key -> (key, random_file r 120)) real in
  List.iter (fun (key, data) -> ok_or_fail ("put " ^ key) (Store.put store ~key data)) payloads;
  let request =
    List.init 1000 (fun i ->
        if i mod 7 = 6 then Printf.sprintf "ghost%d" i else List.nth real (i mod 5))
  in
  let results = Store.get_batch ~use_cache:false store request in
  Alcotest.(check int) "one answer per request" (List.length request) (List.length results);
  let first : (string, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
  List.iter2
    (fun asked (key, result) ->
      Alcotest.(check string) "input order preserved" asked key;
      match result with
      | Error (Store.Key_not_found k) ->
          Alcotest.(check string) "only ghosts miss" asked k;
          Alcotest.(check bool) "miss is a ghost" true
            (String.length k >= 5 && String.sub k 0 5 = "ghost")
      | Error e -> Alcotest.failf "unexpected error for %s: %s" key (Store.error_message e)
      | Ok bytes -> (
          Alcotest.(check bytes) ("recovers original " ^ key) (List.assoc key payloads) bytes;
          match Hashtbl.find_opt first key with
          | None -> Hashtbl.add first key bytes
          | Some prior -> Alcotest.(check bytes) "duplicate entries agree" prior bytes))
    request results

let test_get_batch_duplicate_keys_decode_once () =
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:19 ()) in
  let data = random_file (Dna.Rng.create 55) 180 in
  ok_or_fail "put" (Store.put store ~key:"a" data);
  Dna.Par.reset_counters ();
  (match Store.get_batch ~use_cache:false store [ "a"; "a" ] with
  | [ ("a", Ok b1); ("a", Ok b2) ] ->
      Alcotest.(check bytes) "both entries answered" b1 b2;
      Alcotest.(check bytes) "and recover the original" data b1
  | _ -> Alcotest.fail "duplicate-key batch did not answer both entries");
  let batch_tasks =
    match
      List.find_opt (fun c -> c.Dna.Par.label = "store.get_batch") (Dna.Par.counters ())
    with
    | Some c -> c.Dna.Par.tasks
    | None -> 0
  in
  Alcotest.(check int) "duplicate key decoded once" 1 batch_tasks

let test_get_deterministic_across_batch_shapes () =
  (* An object's wetlab draws derive from (store seed, key, version),
     so the bytes it decodes to cannot depend on which other keys
     share the batch, on batch order, or on how many gets ran before. *)
  let r = Dna.Rng.create 606 in
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:23 ()) in
  List.iter
    (fun key -> ok_or_fail ("put " ^ key) (Store.put store ~key (random_file r 140)))
    [ "a"; "b"; "c" ];
  let solo key = ok_or_fail ("get " ^ key) (Store.get ~use_cache:false store ~key) in
  let in_batch keys key =
    match List.assoc key (Store.get_batch ~use_cache:false store keys) with
    | Ok bytes -> bytes
    | Error e -> Alcotest.failf "batched get %s: %s" key (Store.error_message e)
  in
  let a = solo "a" in
  Alcotest.(check bytes) "repeat solo get replays the stream" a (solo "a");
  Alcotest.(check bytes) "same bytes inside [a;b]" a (in_batch [ "a"; "b" ] "a");
  Alcotest.(check bytes) "same bytes inside [b;a]" a (in_batch [ "b"; "a" ] "a");
  Alcotest.(check bytes) "same bytes inside [c;a;b]" a (in_batch [ "c"; "a"; "b" ] "a");
  (* A new version is a new stream: overwrite must change the draws'
     derivation but still decode to the new payload. *)
  let v2 = random_file r 140 in
  ok_or_fail "overwrite a" (Store.overwrite store ~key:"a" v2);
  Alcotest.(check bytes) "post-overwrite get decodes v2" v2 (solo "a")

(* ---------- LRU cache ---------- *)

let test_cache_hits_on_repeated_get () =
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:21 ()) in
  let data = random_file (Dna.Rng.create 99) 250 in
  ok_or_fail "put" (Store.put store ~key:"hot" data);
  let first = ok_or_fail "first get" (Store.get store ~key:"hot") in
  let second = ok_or_fail "second get" (Store.get store ~key:"hot") in
  Alcotest.(check bytes) "cached get is byte-identical" first second;
  let s = Store.stats store in
  Alcotest.(check int) "one miss (first get)" 1 s.Store.cache_misses;
  Alcotest.(check bool) "repeated get hits the cache" true (s.Store.cache_hits >= 1);
  let rendered = Store.render_stats store in
  Alcotest.(check bool) "report surfaces the hit counters" true
    (contains_substring ~needle:"hit" rendered)

let test_lru_eviction_order () =
  let cache = Store.Lru.create ~capacity:2 in
  Store.Lru.add cache "a" 1;
  Store.Lru.add cache "b" 2;
  Alcotest.(check (option int)) "a cached" (Some 1) (Store.Lru.find cache "a");
  (* "b" is now least recently used; adding "c" must evict it. *)
  Store.Lru.add cache "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Store.Lru.find cache "b");
  Alcotest.(check (option int)) "a survives" (Some 1) (Store.Lru.find cache "a");
  Alcotest.(check (option int)) "c cached" (Some 3) (Store.Lru.find cache "c");
  Alcotest.(check int) "hits" 3 (Store.Lru.hits cache);
  Alcotest.(check int) "misses" 1 (Store.Lru.misses cache);
  let disabled = Store.Lru.create ~capacity:0 in
  Store.Lru.add disabled "x" 1;
  Alcotest.(check (option int)) "capacity 0 disables caching" None (Store.Lru.find disabled "x")

(* ---------- corruption and the format gate ---------- *)

let patch_manifest dir f =
  let path = Filename.concat dir "MANIFEST.json" in
  let ic = open_in_bin path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (f content);
  close_out oc

let test_corrupt_manifest_rejected () =
  let dir = temp_store_dir () in
  let _ = ok_or_fail "init" (Store.init ~dir ~seed:13 ()) in
  patch_manifest dir (fun _ -> "{ not json");
  match Store.open_store ~dir () with
  | Error (Store.Corrupt _) -> ()
  | Ok _ -> Alcotest.fail "opened a store with a garbage manifest"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Store.error_message e)

let test_format_version_gate () =
  let dir = temp_store_dir () in
  let _ = ok_or_fail "init" (Store.init ~dir ~seed:13 ()) in
  patch_manifest dir (fun content ->
      replace_substring
        ~needle:(Printf.sprintf "\"format_version\": %d" Store.format_version)
        ~into:"\"format_version\": 99" content);
  match Store.open_store ~dir () with
  | Error (Store.Corrupt msg) ->
      Alcotest.(check bool) "error names the version" true
        (contains_substring ~needle:"version" msg)
  | Ok _ -> Alcotest.fail "opened a future-format store"
  | Error e -> Alcotest.fail ("unexpected error: " ^ Store.error_message e)

(* ---------- JSON hardening: adversarial and fuzzed inputs ---------- *)

let test_json_rejects_deep_nesting () =
  (* Beyond-max_depth nesting must come back as a typed error, not a
     Stack_overflow. *)
  let deep open_c close_c n =
    String.make n open_c ^ "1" ^ String.make n close_c
  in
  List.iter
    (fun s ->
      match Store.Json.of_string s with
      | Ok _ -> Alcotest.fail "parsed pathologically deep nesting"
      | Error msg ->
          Alcotest.(check bool) "error names the depth" true
            (contains_substring ~needle:"nesting" msg))
    [
      deep '[' ']' (Store.Json.max_depth + 1);
      deep '[' ']' 200_000;
      String.concat "" (List.init 2_000 (fun _ -> "{\"k\":")) ^ "1"
      ^ String.concat "" (List.init 2_000 (fun _ -> "}"));
    ];
  (* ... while nesting inside the bound still parses. *)
  match Store.Json.of_string (deep '[' ']' (Store.Json.max_depth - 1)) with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail ("rejected in-bounds nesting: " ^ msg)

let test_json_rejects_duplicate_keys () =
  List.iter
    (fun s ->
      match Store.Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "parsed duplicate keys in %S" s)
      | Error msg ->
          Alcotest.(check bool) "error names the duplicate" true
            (contains_substring ~needle:"duplicate" msg))
    [
      {|{"a": 1, "a": 2}|};
      {|{"a": 1, "b": {"x": 1, "x": 2}}|};
      {|{"a": 1, "b": 2, "a": 3}|};
    ]

let test_json_fuzz_never_raises () =
  (* Seeded fuzz over mutations of a realistic manifest-shaped document:
     truncations, byte flips, splices of structural characters. Every
     mutant must come back Ok or Error — never an exception. *)
  let base =
    Store.Json.to_string
      (Store.Json.Obj
         [
           ("format_version", Store.Json.Int 2);
           ("seed", Store.Json.Int 42);
           ( "shards",
             Store.Json.List
               [
                 Store.Json.Obj
                   [
                     ("shard_id", Store.Json.Int 0);
                     ("file", Store.Json.String "shards/shard_00000.fasta");
                     ("checksum", Store.Json.Int 123456789);
                   ];
               ] );
           ("label", Store.Json.String "esc\\aped \"quo\tes\" \x01");
         ])
  in
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create (31_337 + seed) in
      let splice_chars = [| '{'; '}'; '['; ']'; '"'; '\\'; ','; ':'; 'u'; '\x00'; '\xff' |] in
      for _ = 1 to 400 do
        let b = Bytes.of_string base in
        let n = Bytes.length b in
        let mutant =
          match Dna.Rng.int rng 3 with
          | 0 -> Bytes.sub_string b 0 (Dna.Rng.int rng n) (* truncation *)
          | 1 ->
              let i = Dna.Rng.int rng n in
              Bytes.set b i splice_chars.(Dna.Rng.int rng (Array.length splice_chars));
              Bytes.to_string b
          | _ ->
              let i = Dna.Rng.int rng n in
              Bytes.set b i (Char.chr (Dna.Rng.int rng 256));
              Bytes.to_string b
        in
        match Store.Json.of_string mutant with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "of_string raised %s on %S" (Printexc.to_string e) mutant
      done)
    [ 1; 2 ]

(* ---------- durability hardening: faults, scrub, degraded reads ---------- *)

let read_whole path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let write_whole path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let shard_path_of store key =
  match Store.object_shard store ~key with
  | None -> Alcotest.failf "no shard for %s" key
  | Some shard -> (
      match Store.shard_path store ~shard with
      | Some p -> p
      | None -> Alcotest.failf "no file for shard %d" shard)

let test_get_on_damaged_shard_fails_typed () =
  (* A truncated or non-FASTA shard file must surface as the typed
     Corrupt_shard — the Fasta parser's complaints must not escape as
     exceptions. *)
  List.iter
    (fun (label, damage) ->
      let dir = temp_store_dir () in
      let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:29 ()) in
      ok_or_fail "put" (Store.put store ~key:"x" (random_file (Dna.Rng.create 12) 200));
      let path = shard_path_of store "x" in
      write_whole path (damage (read_whole path));
      (* A fresh handle, so the read sees the disk, not the pool the
         put left cached in memory. *)
      let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
      match Store.get ~use_cache:false store ~key:"x" with
      | Error (Store.Corrupt_shard { shard = 0; reason }) ->
          Alcotest.(check bool) (label ^ ": reason is non-empty") true (String.length reason > 0)
      | Ok _ -> Alcotest.fail (label ^ ": get succeeded on a damaged shard")
      | Error e -> Alcotest.failf "%s: wrong error: %s" label (Store.error_message e)
      | exception e -> Alcotest.failf "%s: get raised %s" label (Printexc.to_string e))
    [
      ("garbage", fun _ -> "definitely not FASTA\n\x00\x01");
      ("truncated", fun s -> String.sub s 0 (String.length s / 3));
      ("emptied", fun _ -> "");
    ]

let flip_bases_in_record path ~record ~flips =
  (* Rewrite [flips] bases of one molecule, keeping the FASTA framing
     valid so only the checksum and the decode see the damage. *)
  let records, errors = Dna.Fasta.parse_string (read_whole path) in
  Alcotest.(check int) "shard parses before damage" 0 (List.length errors);
  let mutated =
    List.mapi
      (fun i (r : Dna.Fasta.record) ->
        if i <> record then r
        else begin
          let s = Bytes.of_string (Dna.Strand.to_string r.seq) in
          for j = 0 to flips - 1 do
            let pos = 10 + (j * 7) in
            Bytes.set s pos (match Bytes.get s pos with 'A' -> 'C' | 'C' -> 'G' | 'G' -> 'T' | _ -> 'A')
          done;
          { r with Dna.Fasta.seq = Dna.Strand.of_string (Bytes.to_string s) }
        end)
      records
  in
  write_whole path (Dna.Fasta.to_string mutated)

let test_scrub_detects_and_repairs () =
  (* Flip bases inside one molecule: the prefix checksum must catch it,
     scrub must re-synthesize the object bit-identically, and the
     repaired store must survive reopen. Two seeds pin determinism. *)
  List.iter
    (fun seed ->
      let r = Dna.Rng.create (4_000 + seed) in
      let a = random_file r 300 and b = random_file r 150 in
      let dir = temp_store_dir () in
      (* A small shard target keeps a and b in separate shards, so the
         damage (and the repair) stays scoped to one object. *)
      let config = { test_config with Store.shard_target_strands = 20 } in
      let store = ok_or_fail "init" (Store.init ~config ~dir ~seed ()) in
      ok_or_fail "put a" (Store.put store ~key:"a" a);
      ok_or_fail "put b" (Store.put store ~key:"b" b);
      Alcotest.(check bool) "a and b in different shards" true
        (Store.object_shard store ~key:"a" <> Store.object_shard store ~key:"b");
      flip_bases_in_record (shard_path_of store "a") ~record:1 ~flips:3;
      let store = ok_or_fail "reopen damaged" (Store.open_store ~dir ()) in
      (match Store.get ~use_cache:false store ~key:"a" with
      | Error (Store.Corrupt_shard _) -> ()
      | Ok _ -> Alcotest.fail "checksum did not catch the flipped bases"
      | Error e -> Alcotest.fail ("wrong error: " ^ Store.error_message e));
      let rep = ok_or_fail "scrub" (Store.scrub store) in
      Alcotest.(check int) "one corrupt shard found" 1 rep.Store.shards_corrupt;
      Alcotest.(check int) "object repaired" 1 rep.Store.objects_repaired;
      Alcotest.(check int) "nothing degraded" 0 rep.Store.objects_degraded;
      Alcotest.(check int) "nothing lost" 0 rep.Store.objects_lost;
      let a' = ok_or_fail "get a after scrub" (Store.get ~use_cache:false store ~key:"a") in
      Alcotest.(check bytes) "repair is bit-identical" a a';
      (* The damage is gone for good: a second scrub finds nothing, and
         a fresh handle reads the repaired object. *)
      let rep2 = ok_or_fail "second scrub" (Store.scrub store) in
      Alcotest.(check int) "second scrub finds nothing" 0 rep2.Store.shards_corrupt;
      let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
      Alcotest.(check bytes) "repair survives reopen" a
        (ok_or_fail "get a reopened" (Store.get store ~key:"a"));
      Alcotest.(check bytes) "bystander intact" b
        (ok_or_fail "get b reopened" (Store.get store ~key:"b")))
    [ 1; 2 ]

let test_scrub_classifies_lost_and_gates_reads () =
  (* Replace the pool with a useless one: nothing is selectable, so the
     object is Lost, normal reads fail typed, and compact drops it. *)
  let dir = temp_store_dir () in
  let config = { test_config with Store.shard_target_strands = 20 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:31 ()) in
  let data = random_file (Dna.Rng.create 77) 220 in
  ok_or_fail "put" (Store.put store ~key:"doomed" data);
  ok_or_fail "put other" (Store.put store ~key:"other" (random_file (Dna.Rng.create 78) 90));
  write_whole (shard_path_of store "doomed") ">m_0\nACGTACGTACGT\n";
  let rep = ok_or_fail "scrub" (Store.scrub store) in
  Alcotest.(check int) "object lost" 1 rep.Store.objects_lost;
  Alcotest.(check bool) "shard quarantined or dropped" true
    (rep.Store.shards_quarantined + rep.Store.shards_dropped >= 1);
  Alcotest.(check (option string)) "health says lost" (Some "lost")
    (Option.map Store.health_name (Store.object_health store ~key:"doomed"));
  (match Store.get ~use_cache:false store ~key:"doomed" with
  | Error (Store.Object_lost "doomed") -> ()
  | Ok _ -> Alcotest.fail "read of a lost object succeeded"
  | Error e -> Alcotest.fail ("wrong error: " ^ Store.error_message e));
  (match Store.get_partial store ~key:"doomed" with
  | Error (Store.Object_lost _) -> ()
  | Ok _ -> Alcotest.fail "partial read of a lost object succeeded"
  | Error e -> Alcotest.fail ("wrong error: " ^ Store.error_message e));
  let c = ok_or_fail "compact" (Store.compact store) in
  Alcotest.(check int) "compact drops the lost object" 1 c.Store.objects_dropped;
  Alcotest.(check bool) "lost key gone after compact" false (Store.mem store "doomed");
  Alcotest.(check bool) "healthy key survives" true (Store.mem store "other")

let small_params = { Codec.Params.payload_nt = 60; rs_data = 6; rs_parity = 3; scramble_seed = 7 }

let test_scrub_marks_degraded_and_partial_reads () =
  (* Drop the tail molecules of a multi-unit object: the leading units
     survive, so scrub must classify Degraded (not Lost), gate normal
     reads with the recovered fraction, and get_partial must return the
     surviving prefix bit-identically. *)
  let dir = temp_store_dir () in
  let config = { test_config with Store.shard_target_strands = 200; error_rate = 0.005 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:37 ()) in
  let data = random_file (Dna.Rng.create 88) 300 in
  ok_or_fail "put" (Store.put ~params:small_params store ~key:"frayed" data);
  let path = shard_path_of store "frayed" in
  let records, errors = Dna.Fasta.parse_string (read_whole path) in
  Alcotest.(check int) "shard parses before damage" 0 (List.length errors);
  let keep = List.filteri (fun i _ -> i < List.length records - 12) records in
  write_whole path (Dna.Fasta.to_string keep);
  let rep = ok_or_fail "scrub" (Store.scrub store) in
  Alcotest.(check int) "object degraded" 1 rep.Store.objects_degraded;
  Alcotest.(check int) "nothing lost" 0 rep.Store.objects_lost;
  Alcotest.(check int) "damaged shard quarantined" 1 rep.Store.shards_quarantined;
  (match Store.get ~use_cache:false store ~key:"frayed" with
  | Error (Store.Object_degraded { key = "frayed"; recovered_fraction }) ->
      Alcotest.(check bool) "fraction strictly partial" true
        (recovered_fraction > 0.0 && recovered_fraction < 1.0)
  | Ok _ -> Alcotest.fail "normal read of a degraded object succeeded"
  | Error e -> Alcotest.fail ("wrong error: " ^ Store.error_message e));
  let p = ok_or_fail "get_partial" (Store.get_partial store ~key:"frayed") in
  Alcotest.(check int) "partial read has original length" 300 (Bytes.length p.Store.bytes);
  Alcotest.(check bool) "not exact" false p.Store.exact;
  Alcotest.(check bool) "some ranges recovered" true (p.Store.recovered_ranges <> []);
  List.iter
    (fun (a, b) ->
      Alcotest.(check bytes)
        (Printf.sprintf "recovered range [%d,%d) is bit-identical" a b)
        (Bytes.sub data a (b - a))
        (Bytes.sub p.Store.bytes a (b - a)))
    p.Store.recovered_ranges;
  (* The verdict is durable: a fresh handle sees the same health. *)
  let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
  Alcotest.(check (option string)) "degraded after reopen" (Some "degraded")
    (Option.map Store.health_name (Store.object_health store ~key:"frayed"))

let test_simulated_enospc_is_typed_and_recoverable () =
  (* The second data write (the first put's shard file) hits ENOSPC:
     the put must fail with the typed Io_error, ack nothing, release
     the primer pair, and leave the store fully usable. *)
  let dir = temp_store_dir () in
  let io = Store.Io.faulty { (Store.Io.no_faults ~seed:5) with Store.Io.enospc_at = Some 2 } in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~io ~dir ~seed:41 ()) in
  let data = random_file (Dna.Rng.create 13) 180 in
  (match Store.put store ~key:"k" data with
  | Error (Store.Io_error _) -> ()
  | Ok () -> Alcotest.fail "put succeeded through ENOSPC"
  | Error e -> Alcotest.fail ("wrong error: " ^ Store.error_message e));
  Alcotest.(check bool) "nothing acked" false (Store.mem store "k");
  Alcotest.(check int) "no primer pair leaked" 0 (Store.stats store).Store.live_primer_pairs;
  (* The fault was transient; the same key must now go through. *)
  ok_or_fail "retry put" (Store.put store ~key:"k" data);
  Alcotest.(check bytes) "retried put reads back" data
    (ok_or_fail "get" (Store.get ~use_cache:false store ~key:"k"));
  let store = ok_or_fail "reopen" (Store.open_store ~dir ()) in
  Alcotest.(check bytes) "and survives reopen" data (ok_or_fail "get" (Store.get store ~key:"k"))

let strip_v2_fields content =
  (* Rewrite a version-2 manifest as the version-1 format: drop the
     checksum/quarantined/health fields and fix the dangling commas. *)
  let lines = String.split_on_char '\n' content in
  let keep line =
    let t = String.trim line in
    not
      (List.exists
         (fun p -> String.length t >= String.length p && String.sub t 0 (String.length p) = p)
         [ "\"checksum\""; "\"quarantined\""; "\"health\"" ])
  in
  let pruned = String.concat "\n" (List.filter keep lines) in
  (* Remove commas left trailing before a closing bracket. *)
  let buf = Buffer.create (String.length pruned) in
  let n = String.length pruned in
  let i = ref 0 in
  while !i < n do
    let c = pruned.[!i] in
    if c = ',' then begin
      let j = ref (!i + 1) in
      while !j < n && (pruned.[!j] = ' ' || pruned.[!j] = '\n') do
        incr j
      done;
      if !j < n && (pruned.[!j] = '}' || pruned.[!j] = ']') then () else Buffer.add_char buf c
    end
    else Buffer.add_char buf c;
    incr i
  done;
  replace_substring
    ~needle:(Printf.sprintf "\"format_version\": %d" Store.format_version)
    ~into:"\"format_version\": 1" (Buffer.contents buf)

let test_v1_manifest_opens_and_scrub_backfills () =
  let dir = temp_store_dir () in
  let store = ok_or_fail "init" (Store.init ~config:test_config ~dir ~seed:43 ()) in
  let data = random_file (Dna.Rng.create 14) 160 in
  ok_or_fail "put" (Store.put store ~key:"legacy" data);
  patch_manifest dir strip_v2_fields;
  let store = ok_or_fail "open v1 manifest" (Store.open_store ~dir ()) in
  Alcotest.(check bytes) "v1 object reads back" data
    (ok_or_fail "get" (Store.get ~use_cache:false store ~key:"legacy"));
  let rep = ok_or_fail "scrub" (Store.scrub store) in
  Alcotest.(check bool) "scrub backfills the checksums" true (rep.Store.checksums_backfilled >= 1);
  Alcotest.(check int) "no false corruption" 0 rep.Store.shards_corrupt;
  (* The upgraded manifest now verifies like any version-2 store. *)
  let store = ok_or_fail "reopen upgraded" (Store.open_store ~dir ()) in
  let rep2 = ok_or_fail "second scrub" (Store.scrub store) in
  Alcotest.(check int) "nothing left to backfill" 0 rep2.Store.checksums_backfilled;
  Alcotest.(check bytes) "still reads back" data
    (ok_or_fail "get" (Store.get store ~key:"legacy"))

let test_compact_counts_unlink_failures () =
  (* Delete a retired shard file out from under compact: the missing
     unlink must be counted, not silently swallowed, and compaction
     must still succeed. *)
  let dir = temp_store_dir () in
  let config = { test_config with Store.shard_target_strands = 20 } in
  let store = ok_or_fail "init" (Store.init ~config ~dir ~seed:47 ()) in
  ok_or_fail "put a" (Store.put store ~key:"a" (random_file (Dna.Rng.create 15) 250));
  ok_or_fail "put b" (Store.put store ~key:"b" (random_file (Dna.Rng.create 16) 250));
  Alcotest.(check bool) "spread over several shards" true
    ((Store.stats store).Store.n_shards > 1);
  let path = shard_path_of store "a" in
  ok_or_fail "delete a" (Store.delete store ~key:"a");
  Sys.remove path;
  let c = ok_or_fail "compact" (Store.compact store) in
  Alcotest.(check bool) "missing unlink counted" true (c.Store.unlink_failures >= 1);
  Alcotest.(check bytes) "survivor intact" (random_file (Dna.Rng.create 16) 250)
    (ok_or_fail "get b" (Store.get ~use_cache:false store ~key:"b"))

(* ---------- wetlab serialization at store-pool sizes ---------- *)

let random_strand r n =
  Dna.Strand.of_string (String.init n (fun _ -> "ACGT".[Dna.Rng.int r 4]))

let check_fasta_round_trip name records =
  let text = Dna.Fasta.to_string records in
  let parsed, errors = Dna.Fasta.parse_string text in
  Alcotest.(check int) (name ^ ": no parse errors") 0 (List.length errors);
  Alcotest.(check bool) (name ^ ": fasta round trips") true (parsed = records)

let check_fastq_round_trip name records =
  let text = Dna.Fastq.to_string records in
  let parsed, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) (name ^ ": no parse errors") 0 (List.length errors);
  Alcotest.(check bool) (name ^ ": fastq round trips") true (parsed = records)

let test_formats_round_trip_store_sizes () =
  let r = Dna.Rng.create 2024 in
  let fasta_record i = { Dna.Fasta.id = Printf.sprintf "m_%d" i; seq = random_strand r 150 } in
  let fastq_record i =
    let seq = random_strand r 150 in
    { Dna.Fastq.id = Printf.sprintf "r_%d" i; seq; qual = Dna.Fastq.with_uniform_quality ~q:40 seq }
  in
  check_fasta_round_trip "empty pool" [];
  check_fasta_round_trip "single strand" [ fasta_record 0 ];
  check_fasta_round_trip "10k strands" (List.init 10_000 fasta_record);
  check_fastq_round_trip "empty run" [];
  check_fastq_round_trip "single read" [ fastq_record 0 ];
  check_fastq_round_trip "10k reads" (List.init 10_000 fastq_record)

let test_formats_accept_crlf () =
  let r = Dna.Rng.create 77 in
  let records = List.init 20 (fun i -> { Dna.Fasta.id = Printf.sprintf "m_%d" i; seq = random_strand r 120 }) in
  let crlf text =
    String.concat "\r\n" (String.split_on_char '\n' text)
  in
  let parsed, errors = Dna.Fasta.parse_string (crlf (Dna.Fasta.to_string records)) in
  Alcotest.(check int) "fasta: CRLF input parses clean" 0 (List.length errors);
  Alcotest.(check bool) "fasta: CRLF records identical" true (parsed = records);
  let reads =
    List.init 20 (fun i ->
        let seq = random_strand r 120 in
        { Dna.Fastq.id = Printf.sprintf "r_%d" i; seq; qual = Dna.Fastq.with_uniform_quality ~q:30 seq })
  in
  let parsed, errors = Dna.Fastq.parse_string (crlf (Dna.Fastq.to_string reads)) in
  Alcotest.(check int) "fastq: CRLF input parses clean" 0 (List.length errors);
  Alcotest.(check bool) "fastq: CRLF records identical" true (parsed = reads)

let test_wetlab_export_ingest_10k () =
  let r = Dna.Rng.create 555 in
  let pairs = Array.to_list (Codec.Primer.generate_pairs_exn r 2) in
  let p0 = List.nth pairs 0 and p1 = List.nth pairs 1 in
  let core () = random_strand r 110 in
  let reads =
    Array.init 10_000 (fun i ->
        let pair = if i mod 2 = 0 then p0 else p1 in
        Codec.Primer.attach pair (core ()))
  in
  let text = Dnastore.Wetlab_io.export_fastq reads in
  let ingested = Dnastore.Wetlab_io.ingest_string pairs text in
  Alcotest.(check int) "all reads ingested" 10_000
    ingested.Dnastore.Wetlab_io.stats.Dnastore.Wetlab_io.total_records;
  Alcotest.(check int) "no stray reads" 0
    ingested.Dnastore.Wetlab_io.stats.Dnastore.Wetlab_io.no_primer_match;
  List.iter
    (fun (_, cores) -> Alcotest.(check int) "balanced demux" 5_000 (Array.length cores))
    ingested.Dnastore.Wetlab_io.by_pair

let () =
  Alcotest.run "store"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects_malformed;
        ] );
      ( "durability",
        [
          Alcotest.test_case "survives reopen (2 seeds)" `Slow test_store_survives_reopen;
          Alcotest.test_case "init refuses existing" `Quick test_init_refuses_existing;
          Alcotest.test_case "no temp leftovers" `Slow test_no_tmp_leftovers;
        ] );
      ( "rewrite",
        [
          Alcotest.test_case "delete + compact reclaims (2 seeds)" `Slow
            test_delete_compact_reclaims;
          Alcotest.test_case "overwrite appends a version" `Slow test_overwrite_appends_version;
        ] );
      ( "batch",
        [
          Alcotest.test_case "batched get equals sequential" `Slow
            test_get_batch_matches_sequential;
          Alcotest.test_case "1k-key batch joins in input order" `Slow
            test_get_batch_thousand_keys;
          Alcotest.test_case "duplicate keys decode once, answer twice" `Slow
            test_get_batch_duplicate_keys_decode_once;
          Alcotest.test_case "bytes independent of batch shape" `Slow
            test_get_deterministic_across_batch_shapes;
        ] );
      ( "cache",
        [
          Alcotest.test_case "repeated get hits" `Slow test_cache_hits_on_repeated_get;
          Alcotest.test_case "LRU eviction order" `Quick test_lru_eviction_order;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "garbage manifest rejected" `Quick test_corrupt_manifest_rejected;
          Alcotest.test_case "format version gate" `Quick test_format_version_gate;
        ] );
      ( "json hardening",
        [
          Alcotest.test_case "deep nesting fails typed" `Quick test_json_rejects_deep_nesting;
          Alcotest.test_case "duplicate keys rejected" `Quick test_json_rejects_duplicate_keys;
          Alcotest.test_case "fuzzed inputs never raise (2 seeds)" `Quick
            test_json_fuzz_never_raises;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "damaged shard fails typed" `Slow
            test_get_on_damaged_shard_fails_typed;
          Alcotest.test_case "scrub detects and repairs (2 seeds)" `Slow
            test_scrub_detects_and_repairs;
          Alcotest.test_case "scrub classifies lost, reads gated" `Slow
            test_scrub_classifies_lost_and_gates_reads;
          Alcotest.test_case "scrub marks degraded, partial reads" `Slow
            test_scrub_marks_degraded_and_partial_reads;
          Alcotest.test_case "simulated ENOSPC is typed and recoverable" `Slow
            test_simulated_enospc_is_typed_and_recoverable;
          Alcotest.test_case "v1 manifest opens, scrub backfills" `Slow
            test_v1_manifest_opens_and_scrub_backfills;
          Alcotest.test_case "compact counts unlink failures" `Slow
            test_compact_counts_unlink_failures;
        ] );
      ( "formats",
        [
          Alcotest.test_case "round trips at store sizes" `Quick
            test_formats_round_trip_store_sizes;
          Alcotest.test_case "CRLF input" `Quick test_formats_accept_crlf;
          Alcotest.test_case "wetlab export/ingest 10k reads" `Quick
            test_wetlab_export_ingest_10k;
        ] );
    ]
