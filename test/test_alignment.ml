(* The banded alignment kernel is a perf knob, never a semantics knob:
   on every input, every backend and every band must return the same
   score (equal to the edit distance) and the same script, bit for bit.
   These tests sweep random pairs — siblings at several error rates plus
   unrelated strands — across lengths 0..300 and bands from degenerate
   (1) through the score-first default to read-length, including the
   explicit-band fallback path. *)

let seeds = [ 1; 7; 42 ]

let sibling rng ~error_rate s =
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  Simulator.Channel.transmit ch rng s

(* One strand pair per case: mostly siblings, some unrelated. *)
let random_pair rng =
  let la = Dna.Rng.int rng 301 in
  let a = Dna.Strand.random rng la in
  let b =
    if Dna.Rng.int rng 4 = 0 then Dna.Strand.random rng (Dna.Rng.int rng 301)
    else
      let rates = [| 0.02; 0.06; 0.15; 0.4 |] in
      sibling rng ~error_rate:rates.(Dna.Rng.int rng 4) a
  in
  (a, b)

let check_exact (a, b) =
  let f = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
  let d = Dna.Distance.levenshtein a b in
  Alcotest.(check int) "full score is the edit distance" d f.Dna.Alignment.score;
  (* the script must replay to the second strand *)
  Alcotest.(check bool) "full script replays" true
    (Dna.Strand.equal b (Dna.Alignment.apply_script f.Dna.Alignment.script));
  let same name (g : Dna.Alignment.t) =
    Alcotest.(check int) (name ^ " score") f.Dna.Alignment.score g.Dna.Alignment.score;
    Alcotest.(check bool) (name ^ " script identical") true
      (g.Dna.Alignment.script = f.Dna.Alignment.script)
  in
  same "banded(auto)" (Dna.Alignment.align ~backend:Dna.Alignment.Banded a b);
  same "auto" (Dna.Alignment.align ~backend:Dna.Alignment.Auto a b);
  List.iter
    (fun w ->
      same
        (Printf.sprintf "banded(band=%d)" w)
        (Dna.Alignment.align ~backend:Dna.Alignment.Banded ~band:w a b))
    [ 1; 8; 16; max 1 (Dna.Strand.length b) ]

let test_banded_matches_oracle () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      for _ = 1 to 150 do
        check_exact (random_pair rng)
      done)
    seeds

(* Tiny explicit bands force the fallback: the result is still exact and
   the process-wide counter records that the band was too narrow. *)
let test_explicit_band_fallback_counted () =
  Dna.Alignment.reset_banded_fallbacks ();
  let rng = Dna.Rng.create 99 in
  let a = Dna.Strand.random rng 120 in
  let b = sibling rng ~error_rate:0.15 a in
  let f = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
  Alcotest.(check bool) "pair is distant enough to overflow band 1" true
    (f.Dna.Alignment.score > 1);
  let g = Dna.Alignment.align ~backend:Dna.Alignment.Banded ~band:1 a b in
  Alcotest.(check int) "fallback result exact" f.Dna.Alignment.score g.Dna.Alignment.score;
  Alcotest.(check bool) "fallback counted" true (Dna.Alignment.banded_fallbacks () > 0);
  (* the score-first default band never falls back *)
  Dna.Alignment.reset_banded_fallbacks ();
  ignore (Dna.Alignment.align ~backend:Dna.Alignment.Banded a b);
  Alcotest.(check int) "score-first path never retries" 0 (Dna.Alignment.banded_fallbacks ())

(* The packed script is the same alignment as the decoded one. *)
let test_packed_roundtrip () =
  let rng = Dna.Rng.create 3 in
  for _ = 1 to 50 do
    let a, b = random_pair rng in
    let p = Dna.Alignment.align_packed a b in
    let t = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
    Alcotest.(check int) "packed score" t.Dna.Alignment.score p.Dna.Alignment.packed_score;
    Alcotest.(check bool) "packed script decodes identically" true
      (Dna.Alignment.script_of_packed p = t.Dna.Alignment.script)
  done

(* POA graphs must be identical however narrow the (exact, fallback-
   guarded) band is. *)
let test_poa_band_invariant () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      List.iter
        (fun coverage ->
          let clean = Dna.Strand.random rng 120 in
          let reads =
            List.init coverage (fun _ -> sibling rng ~error_rate:0.06 clean)
          in
          let consensus_at band = Dna.Poa.consensus (Dna.Poa.of_reads ?band reads) in
          let unpruned = consensus_at (Some 10_000) in
          List.iter
            (fun band ->
              Alcotest.(check bool)
                (Printf.sprintf "cov %d band %d consensus unchanged" coverage band)
                true
                (Dna.Strand.equal unpruned (consensus_at (Some band))))
            [ 1; 8; Dna.Alignment.default_band ];
          Alcotest.(check bool)
            (Printf.sprintf "cov %d default band consensus unchanged" coverage)
            true
            (Dna.Strand.equal unpruned (consensus_at None)))
        [ 3; 10; 20 ])
    seeds

(* NW consensus is backend-invariant on whole clusters. *)
let test_consensus_backend_invariant () =
  let rng = Dna.Rng.create 17 in
  List.iter
    (fun coverage ->
      for _ = 1 to 6 do
        let clean = Dna.Strand.random rng 120 in
        let reads = Array.init coverage (fun _ -> sibling rng ~error_rate:0.06 clean) in
        let full =
          Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Full ~target_len:120
            reads
        in
        let banded =
          Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Banded ~target_len:120
            reads
        in
        Alcotest.(check bool)
          (Printf.sprintf "cov %d consensus byte-identical" coverage)
          true (Dna.Strand.equal full banded)
      done)
    [ 5; 10; 20 ]

(* The cluster order fed to reconstruction is a pure function of the
   cluster set: however the clustering stage happened to emit the
   clusters (e.g. across [--domains] settings), sorting yields the same
   sequence — including among same-size clusters, which tie-break on
   their reads (length, then lexicographic). *)
let test_cluster_sort_deterministic () =
  let rng = Dna.Rng.create 23 in
  let clusters =
    Array.init 12 (fun _ ->
        let clean = Dna.Strand.random rng 60 in
        (* fixed size 4: every cluster exercises the tie-break *)
        Array.init 4 (fun _ -> sibling rng ~error_rate:0.1 clean))
  in
  let shuffle arr =
    for i = Array.length arr - 1 downto 1 do
      let j = Dna.Rng.int rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done
  in
  let reference = Array.copy clusters in
  Dnastore.Pipeline.sort_clusters reference;
  for _ = 1 to 5 do
    let shuffled = Array.copy clusters in
    shuffle shuffled;
    Dnastore.Pipeline.sort_clusters shuffled;
    Alcotest.(check bool) "sorted cluster order identical" true (shuffled = reference)
  done

let () =
  Alcotest.run "alignment"
    [
      ( "exactness",
        [
          Alcotest.test_case "banded == full == levenshtein" `Quick test_banded_matches_oracle;
          Alcotest.test_case "explicit band fallback" `Quick test_explicit_band_fallback_counted;
          Alcotest.test_case "packed roundtrip" `Quick test_packed_roundtrip;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "poa band invariant" `Quick test_poa_band_invariant;
          Alcotest.test_case "nw backend invariant" `Quick test_consensus_backend_invariant;
          Alcotest.test_case "cluster sort deterministic" `Quick test_cluster_sort_deterministic;
        ] );
    ]
