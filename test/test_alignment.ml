(* The banded alignment kernel is a perf knob, never a semantics knob:
   on every input, every backend and every band must return the same
   score (equal to the edit distance) and the same script, bit for bit.
   These tests sweep random pairs — siblings at several error rates plus
   unrelated strands — across lengths 0..300 and bands from degenerate
   (1) through the score-first default to read-length, including the
   explicit-band fallback path. *)

let seeds = [ 1; 7; 42 ]

let sibling rng ~error_rate s =
  let ch = Simulator.Iid_channel.create_rate ~error_rate in
  Simulator.Channel.transmit ch rng s

(* One strand pair per case: mostly siblings, some unrelated. *)
let random_pair rng =
  let la = Dna.Rng.int rng 301 in
  let a = Dna.Strand.random rng la in
  let b =
    if Dna.Rng.int rng 4 = 0 then Dna.Strand.random rng (Dna.Rng.int rng 301)
    else
      let rates = [| 0.02; 0.06; 0.15; 0.4 |] in
      sibling rng ~error_rate:rates.(Dna.Rng.int rng 4) a
  in
  (a, b)

let check_exact (a, b) =
  let f = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
  let d = Dna.Distance.levenshtein a b in
  Alcotest.(check int) "full score is the edit distance" d f.Dna.Alignment.score;
  (* the script must replay to the second strand *)
  Alcotest.(check bool) "full script replays" true
    (Dna.Strand.equal b (Dna.Alignment.apply_script f.Dna.Alignment.script));
  let same name (g : Dna.Alignment.t) =
    Alcotest.(check int) (name ^ " score") f.Dna.Alignment.score g.Dna.Alignment.score;
    Alcotest.(check bool) (name ^ " script identical") true
      (g.Dna.Alignment.script = f.Dna.Alignment.script)
  in
  same "banded(auto)" (Dna.Alignment.align ~backend:Dna.Alignment.Banded a b);
  same "auto" (Dna.Alignment.align ~backend:Dna.Alignment.Auto a b);
  List.iter
    (fun w ->
      same
        (Printf.sprintf "banded(band=%d)" w)
        (Dna.Alignment.align ~backend:Dna.Alignment.Banded ~band:w a b))
    [ 1; 8; 16; max 1 (Dna.Strand.length b) ]

let test_banded_matches_oracle () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      for _ = 1 to 150 do
        check_exact (random_pair rng)
      done)
    seeds

(* Tiny explicit bands force the fallback: the result is still exact and
   the process-wide counter records that the band was too narrow. *)
let test_explicit_band_fallback_counted () =
  Dna.Alignment.reset_banded_fallbacks ();
  let rng = Dna.Rng.create 99 in
  let a = Dna.Strand.random rng 120 in
  let b = sibling rng ~error_rate:0.15 a in
  let f = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
  Alcotest.(check bool) "pair is distant enough to overflow band 1" true
    (f.Dna.Alignment.score > 1);
  let g = Dna.Alignment.align ~backend:Dna.Alignment.Banded ~band:1 a b in
  Alcotest.(check int) "fallback result exact" f.Dna.Alignment.score g.Dna.Alignment.score;
  Alcotest.(check bool) "fallback counted" true (Dna.Alignment.banded_fallbacks () > 0);
  (* the score-first default band never falls back *)
  Dna.Alignment.reset_banded_fallbacks ();
  ignore (Dna.Alignment.align ~backend:Dna.Alignment.Banded a b);
  Alcotest.(check int) "score-first path never retries" 0 (Dna.Alignment.banded_fallbacks ())

(* The packed script is the same alignment as the decoded one. *)
let test_packed_roundtrip () =
  let rng = Dna.Rng.create 3 in
  for _ = 1 to 50 do
    let a, b = random_pair rng in
    let p = Dna.Alignment.align_packed a b in
    let t = Dna.Alignment.align ~backend:Dna.Alignment.Full a b in
    Alcotest.(check int) "packed score" t.Dna.Alignment.score p.Dna.Alignment.packed_score;
    Alcotest.(check bool) "packed script decodes identically" true
      (Dna.Alignment.script_of_packed p = t.Dna.Alignment.script)
  done

(* POA graphs must be identical however narrow the (exact, fallback-
   guarded) band is. *)
let test_poa_band_invariant () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      List.iter
        (fun coverage ->
          let clean = Dna.Strand.random rng 120 in
          let reads =
            List.init coverage (fun _ -> sibling rng ~error_rate:0.06 clean)
          in
          let consensus_at band = Dna.Poa.consensus (Dna.Poa.of_reads ?band reads) in
          let unpruned = consensus_at (Some 10_000) in
          List.iter
            (fun band ->
              Alcotest.(check bool)
                (Printf.sprintf "cov %d band %d consensus unchanged" coverage band)
                true
                (Dna.Strand.equal unpruned (consensus_at (Some band))))
            [ 1; 8; Dna.Alignment.default_band ];
          Alcotest.(check bool)
            (Printf.sprintf "cov %d default band consensus unchanged" coverage)
            true
            (Dna.Strand.equal unpruned (consensus_at None)))
        [ 3; 10; 20 ])
    seeds

(* NW consensus is backend-invariant on whole clusters. *)
let test_consensus_backend_invariant () =
  let rng = Dna.Rng.create 17 in
  List.iter
    (fun coverage ->
      for _ = 1 to 6 do
        let clean = Dna.Strand.random rng 120 in
        let reads = Array.init coverage (fun _ -> sibling rng ~error_rate:0.06 clean) in
        let full =
          Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Full ~target_len:120
            reads
        in
        let banded =
          Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Banded ~target_len:120
            reads
        in
        Alcotest.(check bool)
          (Printf.sprintf "cov %d consensus byte-identical" coverage)
          true (Dna.Strand.equal full banded)
      done)
    [ 5; 10; 20 ]

(* The cluster order fed to reconstruction is a pure function of the
   cluster set: however the clustering stage happened to emit the
   clusters (e.g. across [--domains] settings), sorting yields the same
   sequence — including among same-size clusters, which tie-break on
   their reads (length, then lexicographic). *)
let test_cluster_sort_deterministic () =
  let rng = Dna.Rng.create 23 in
  let clusters =
    Array.init 12 (fun _ ->
        let clean = Dna.Strand.random rng 60 in
        (* fixed size 4: every cluster exercises the tie-break *)
        Array.init 4 (fun _ -> sibling rng ~error_rate:0.1 clean))
  in
  let shuffle arr =
    for i = Array.length arr - 1 downto 1 do
      let j = Dna.Rng.int rng (i + 1) in
      let t = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- t
    done
  in
  let reference = Array.copy clusters in
  Dnastore.Pipeline.sort_clusters reference;
  for _ = 1 to 5 do
    let shuffled = Array.copy clusters in
    shuffle shuffled;
    Dnastore.Pipeline.sort_clusters shuffled;
    Alcotest.(check bool) "sorted cluster order identical" true (shuffled = reference)
  done

(* ---- pool-native reconstruction: bit-identity with the boxed path ----

   The arena surfaces ([reconstruct_pool] and friends) are a perf knob,
   never a semantics knob: on every cluster, the pool path over an
   index slice must return byte-for-byte what the boxed path returns
   over the materialized reads — including which exceptions it raises
   (an empty slice must refuse exactly like an empty array). *)

(* A random cluster at coverage 3..20 over a clean strand of length
   0..300, packed into a pool alongside decoy reads so slices exercise
   non-contiguous, non-zero-based indexing. *)
let random_cluster rng =
  let coverage = 3 + Dna.Rng.int rng 18 in
  let len = Dna.Rng.int rng 301 in
  let clean = Dna.Strand.random rng len in
  let rates = [| 0.02; 0.06; 0.15 |] in
  let reads =
    Array.init coverage (fun _ -> sibling rng ~error_rate:rates.(Dna.Rng.int rng 3) clean)
  in
  let target_len = max 1 len in
  (reads, target_len)

(* Pack [reads] into a fresh pool interleaved with decoys; returns the
   pool and the slice addressing just the cluster. *)
let pool_of_reads rng reads =
  let pool = Dna.Strand_pool.create () in
  let idxs =
    Array.map
      (fun r ->
        if Dna.Rng.int rng 3 = 0 then
          ignore (Dna.Strand_pool.add_strand pool (Dna.Strand.random rng (Dna.Rng.int rng 50)));
        Dna.Strand_pool.add_strand pool r)
      reads
  in
  (pool, idxs)

let outcome f = match f () with s -> Ok s | exception e -> Error (Printexc.to_string e)

let check_strand_outcome name boxed pooled =
  match (boxed, pooled) with
  | Ok a, Ok b ->
      Alcotest.(check bool) (name ^ " byte-identical") true (Dna.Strand.equal a b)
  | Error a, Error b -> Alcotest.(check string) (name ^ " same failure") a b
  | Ok _, Error e -> Alcotest.failf "%s: boxed succeeded, pooled raised %s" name e
  | Error e, Ok _ -> Alcotest.failf "%s: boxed raised %s, pooled succeeded" name e

let algorithms =
  [
    ( "nw",
      (fun ~target_len reads ->
        Reconstruction.Nw_consensus.reconstruct ~backend:Dna.Alignment.Banded ~target_len reads),
      fun ~target_len pool idxs ->
        Reconstruction.Nw_consensus.reconstruct_pool ~backend:Dna.Alignment.Banded ~target_len
          pool idxs );
    ( "bma",
      (fun ~target_len reads -> Reconstruction.Bma.reconstruct ~target_len reads),
      fun ~target_len pool idxs -> Reconstruction.Bma.reconstruct_pool ~target_len pool idxs );
    ( "dbma",
      (fun ~target_len reads -> Reconstruction.Bma.reconstruct_double ~target_len reads),
      fun ~target_len pool idxs ->
        Reconstruction.Bma.reconstruct_double_pool ~target_len pool idxs );
    ( "ensemble",
      (fun ~target_len reads ->
        Reconstruction.Ensemble.reconstruct ~backend:Dna.Alignment.Banded ~target_len reads),
      fun ~target_len pool idxs ->
        Reconstruction.Ensemble.reconstruct_pool ~backend:Dna.Alignment.Banded ~target_len pool
          idxs );
    ( "majority",
      (fun ~target_len reads -> Reconstruction.Ensemble.majority ~target_len reads),
      fun ~target_len pool idxs -> Reconstruction.Ensemble.majority_pool ~target_len pool idxs );
  ]

let test_pool_matches_boxed () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      for case = 1 to 25 do
        let reads, target_len = random_cluster rng in
        let pool, idxs = pool_of_reads rng reads in
        List.iter
          (fun (name, boxed, pooled) ->
            check_strand_outcome
              (Printf.sprintf "%s seed %d case %d" name seed case)
              (outcome (fun () -> boxed ~target_len reads))
              (outcome (fun () -> pooled ~target_len pool idxs)))
          algorithms;
        (* the fallback chain, including the empty slice *)
        let fb = Reconstruction.Ensemble.reconstruct_fallback ~target_len reads in
        let fbp = Reconstruction.Ensemble.reconstruct_fallback_pool ~target_len pool idxs in
        (match (fb, fbp) with
        | Some a, Some b ->
            Alcotest.(check bool) "fallback byte-identical" true (Dna.Strand.equal a b)
        | None, None -> ()
        | _ -> Alcotest.fail "fallback chain diverged between spines");
        Alcotest.(check bool) "fallback on empty slice" true
          (Reconstruction.Ensemble.reconstruct_fallback_pool ~target_len pool [||] = None)
      done)
    seeds

(* Empty clusters refuse identically on both spines. *)
let test_pool_empty_cluster () =
  let pool = Dna.Strand_pool.create () in
  List.iter
    (fun (name, boxed, pooled) ->
      check_strand_outcome (name ^ " empty")
        (outcome (fun () -> boxed ~target_len:10 [||]))
        (outcome (fun () -> pooled ~target_len:10 pool [||])))
    algorithms

(* The per-domain arenas must not interfere: reconstructing many
   clusters through the domain pool (domains 1, 2 and 4) returns the
   same strands the boxed serial loop does. Each worker reuses its own
   arena across tasks, so any cross-task or cross-domain state leak
   shows up as a mismatch. *)
let test_pool_arena_isolation_across_domains () =
  let rng = Dna.Rng.create 2024 in
  let clusters = Array.init 24 (fun _ -> random_cluster rng) in
  let pools = Array.map (fun (reads, _) -> pool_of_reads rng reads) clusters in
  let serial =
    Array.map
      (fun (reads, target_len) ->
        Reconstruction.Ensemble.reconstruct ~backend:Dna.Alignment.Banded ~target_len reads)
      clusters
  in
  List.iter
    (fun domains ->
      let pooled =
        Dna.Par.map_array ~label:"test.pool_isolation" ~domains
          (fun i ->
            let _, target_len = clusters.(i) in
            let pool, idxs = pools.(i) in
            Reconstruction.Ensemble.reconstruct_pool ~backend:Dna.Alignment.Banded ~target_len
              pool idxs)
          (Array.init (Array.length clusters) Fun.id)
      in
      Array.iteri
        (fun i s ->
          Alcotest.(check bool)
            (Printf.sprintf "domains %d cluster %d identical" domains i)
            true (Dna.Strand.equal serial.(i) s))
        pooled)
    [ 1; 2; 4 ]

let () =
  Alcotest.run "alignment"
    [
      ( "exactness",
        [
          Alcotest.test_case "banded == full == levenshtein" `Quick test_banded_matches_oracle;
          Alcotest.test_case "explicit band fallback" `Quick test_explicit_band_fallback_counted;
          Alcotest.test_case "packed roundtrip" `Quick test_packed_roundtrip;
        ] );
      ( "consensus",
        [
          Alcotest.test_case "poa band invariant" `Quick test_poa_band_invariant;
          Alcotest.test_case "nw backend invariant" `Quick test_consensus_backend_invariant;
          Alcotest.test_case "cluster sort deterministic" `Quick test_cluster_sort_deterministic;
        ] );
      ( "pool",
        [
          Alcotest.test_case "pool == boxed (all algorithms)" `Quick test_pool_matches_boxed;
          Alcotest.test_case "empty cluster refuses identically" `Quick test_pool_empty_cluster;
          Alcotest.test_case "arena isolation across domains" `Quick
            test_pool_arena_isolation_across_domains;
        ] );
    ]
