(* Tests for trace reconstruction: BMA-lookahead, double-sided BMA, the
   NW/profile consensus, and the evaluation metrics. *)

let rng () = Dna.Rng.create 1618

let strand = Alcotest.testable Dna.Strand.pp Dna.Strand.equal

let noisy_cluster r ~channel ~coverage clean =
  Array.init coverage (fun _ -> Simulator.Channel.transmit channel r clean)

let algorithms =
  [
    ("bma", fun ~target_len reads -> Reconstruction.Bma.reconstruct ~target_len reads);
    ("dbma", fun ~target_len reads -> Reconstruction.Bma.reconstruct_double ~target_len reads);
    ("nw", fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads);
    ("ensemble", fun ~target_len reads -> Reconstruction.Ensemble.reconstruct ~target_len reads);
    ("trellis", fun ~target_len reads -> Reconstruction.Trellis.reconstruct ~target_len reads);
  ]

(* ---------- exactness on easy inputs ---------- *)

let test_noiseless_cluster_exact () =
  let r = rng () in
  List.iter
    (fun (name, recon) ->
      for _ = 1 to 20 do
        let clean = Dna.Strand.random r 80 in
        let reads = Array.make 6 clean in
        Alcotest.check strand (name ^ " exact on noiseless") clean
          (recon ~target_len:80 reads)
      done)
    algorithms

let test_single_read_cluster () =
  let r = rng () in
  let clean = Dna.Strand.random r 50 in
  List.iter
    (fun (name, recon) ->
      Alcotest.check strand (name ^ " single clean read") clean
        (recon ~target_len:50 [| clean |]))
    algorithms

let test_output_length_always_target () =
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  List.iter
    (fun (name, recon) ->
      for _ = 1 to 20 do
        let clean = Dna.Strand.random r 70 in
        let reads = noisy_cluster r ~channel:ch ~coverage:5 clean in
        Alcotest.(check int) (name ^ " length") 70 (Dna.Strand.length (recon ~target_len:70 reads))
      done)
    algorithms

let test_empty_cluster_rejected () =
  List.iter
    (fun (name, recon) ->
      match recon ~target_len:10 [||] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail (name ^ " accepted empty cluster"))
    algorithms

let test_majority_substitution_corrected () =
  (* One read carries a substitution; the other four outvote it. *)
  let r = rng () in
  List.iter
    (fun (name, recon) ->
      for _ = 1 to 20 do
        let clean = Dna.Strand.random r 60 in
        let codes = Dna.Strand.to_codes clean in
        let pos = Dna.Rng.int r 60 in
        codes.(pos) <- (codes.(pos) + 1) land 3;
        let bad = Dna.Strand.of_codes codes in
        let reads = [| clean; clean; bad; clean; clean |] in
        Alcotest.check strand (name ^ " outvotes substitution") clean (recon ~target_len:60 reads)
      done)
    algorithms

let test_single_deletion_realigned () =
  (* One read is missing a base; alignment must absorb it. *)
  let r = rng () in
  List.iter
    (fun (name, recon) ->
      for _ = 1 to 20 do
        let clean = Dna.Strand.random r 60 in
        let pos = Dna.Rng.int r 60 in
        let codes = Dna.Strand.to_codes clean in
        let short =
          Dna.Strand.of_codes (Array.append (Array.sub codes 0 pos) (Array.sub codes (pos + 1) (59 - pos)))
        in
        let reads = [| clean; short; clean; clean |] in
        Alcotest.check strand (name ^ " absorbs deletion") clean (recon ~target_len:60 reads)
      done)
    algorithms

(* ---------- statistical behaviour ---------- *)

let perfect_rate recon r ~channel ~coverage ~len ~trials =
  let ok = ref 0 in
  for _ = 1 to trials do
    let clean = Dna.Strand.random r len in
    let reads = noisy_cluster r ~channel ~coverage clean in
    if Dna.Strand.equal clean (recon ~target_len:len reads) then incr ok
  done;
  float_of_int !ok /. float_of_int trials

let test_iid6_coverage10_mostly_perfect () =
  let r = rng () in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  List.iter
    (fun (name, recon) ->
      let rate = perfect_rate recon r ~channel:ch ~coverage:10 ~len:110 ~trials:40 in
      Alcotest.(check bool)
        (Printf.sprintf "%s perfect rate %.2f >= 0.75" name rate)
        true (rate >= 0.75))
    algorithms

let test_nw_improves_with_coverage () =
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let recon ~target_len reads = Reconstruction.Nw_consensus.reconstruct ~target_len reads in
  let lo = perfect_rate recon r ~channel:ch ~coverage:5 ~len:90 ~trials:30 in
  let hi = perfect_rate recon r ~channel:ch ~coverage:25 ~len:90 ~trials:30 in
  Alcotest.(check bool)
    (Printf.sprintf "coverage helps (%.2f -> %.2f)" lo hi)
    true (hi > lo)

let test_bma_error_grows_rightward () =
  (* Single-sided BMA propagates errors toward the far end (Figure 6). *)
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let pairs =
    List.init 120 (fun _ ->
        let clean = Dna.Strand.random r 100 in
        let reads = noisy_cluster r ~channel:ch ~coverage:8 clean in
        (clean, Reconstruction.Bma.reconstruct ~target_len:100 reads))
  in
  let profile = Reconstruction.Recon_metrics.per_index_error pairs in
  let seg lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. profile.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  Alcotest.(check bool) "last third worse than first third" true (seg 66 100 > seg 0 33)

let test_dbma_error_peaks_in_middle () =
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let pairs =
    List.init 120 (fun _ ->
        let clean = Dna.Strand.random r 100 in
        let reads = noisy_cluster r ~channel:ch ~coverage:8 clean in
        (clean, Reconstruction.Bma.reconstruct_double ~target_len:100 reads))
  in
  let profile = Reconstruction.Recon_metrics.per_index_error pairs in
  let seg lo hi =
    let s = ref 0.0 in
    for i = lo to hi - 1 do
      s := !s +. profile.(i)
    done;
    !s /. float_of_int (hi - lo)
  in
  let middle = seg 35 65 and ends = (seg 0 20 +. seg 80 100) /. 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "middle %.3f > ends %.3f" middle ends)
    true (middle > ends)

let test_nw_flatter_than_dbma () =
  (* Figure 6: NW reduces the peak error. *)
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let collect recon =
    List.init 120 (fun _ ->
        let clean = Dna.Strand.random r 100 in
        let reads = noisy_cluster r ~channel:ch ~coverage:10 clean in
        (clean, recon ~target_len:100 reads))
  in
  let peak pairs =
    Array.fold_left max 0.0 (Reconstruction.Recon_metrics.per_index_error pairs)
  in
  let p_dbma = peak (collect (Reconstruction.Bma.reconstruct_double ?lookahead:None)) in
  let p_nw = peak (collect ((fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads))) in
  Alcotest.(check bool)
    (Printf.sprintf "nw peak %.3f < dbma peak %.3f" p_nw p_dbma)
    true (p_nw < p_dbma)

(* ---------- truncated / damaged reads ---------- *)

let test_truncated_reads_tolerated () =
  let r = rng () in
  List.iter
    (fun (name, recon) ->
      let ok = ref 0 in
      for _ = 1 to 30 do
        let clean = Dna.Strand.random r 80 in
        let reads =
          Array.init 8 (fun i ->
              if i < 2 then Dna.Strand.sub clean ~pos:0 ~len:50 (* truncated tail *)
              else clean)
        in
        if Dna.Strand.equal clean (recon ~target_len:80 reads) then incr ok
      done;
      Alcotest.(check bool)
        (Printf.sprintf "%s survives truncated reads (%d/30)" name !ok)
        true (!ok >= 25))
    algorithms

let test_trellis_refines_nw_at_sparse_coverage () =
  (* Soft evidence pays exactly where hard votes are thin: sparse
     coverage (its documented regime). *)
  let r = rng () in
  let ch = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  let collect recon =
    List.init 60 (fun _ ->
        let clean = Dna.Strand.random r 80 in
        let reads = noisy_cluster r ~channel:ch ~coverage:4 clean in
        (clean, recon ~target_len:80 reads))
  in
  let avg pairs =
    Reconstruction.Recon_metrics.average_error (Reconstruction.Recon_metrics.per_index_error pairs)
  in
  let e_nw = avg (collect ((fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads))) in
  let e_tr = avg (collect (fun ~target_len reads -> Reconstruction.Trellis.reconstruct ~target_len reads)) in
  Alcotest.(check bool)
    (Printf.sprintf "trellis %.3f < nw %.3f at coverage 4" e_tr e_nw)
    true
    (e_tr < e_nw)

let test_trellis_rates_estimation () =
  let r = rng () in
  let clean = Dna.Strand.random r 120 in
  let ch = Simulator.Iid_channel.create { p_ins = 0.02; p_del = 0.05; p_sub = 0.03 } in
  let reads = Array.init 30 (fun _ -> Simulator.Channel.transmit ch r clean) in
  let rates = Reconstruction.Trellis.estimate_rates clean reads in
  Alcotest.(check bool)
    (Printf.sprintf "del %.3f ~ 0.05" rates.Reconstruction.Trellis.p_del)
    true
    (abs_float (rates.Reconstruction.Trellis.p_del -. 0.05) < 0.02);
  Alcotest.(check bool)
    (Printf.sprintf "sub %.3f ~ 0.03" rates.Reconstruction.Trellis.p_sub)
    true
    (abs_float (rates.Reconstruction.Trellis.p_sub -. 0.03) < 0.02)

let test_ensemble_at_least_as_good_as_nw () =
  (* On the wetlab channel at coverage 10 the vote should match or beat
     the best single algorithm on average error. *)
  let r = rng () in
  let ch = Simulator.Wetlab_channel.create () in
  let collect recon =
    List.init 80 (fun _ ->
        let clean = Dna.Strand.random r 90 in
        let reads = noisy_cluster r ~channel:ch ~coverage:10 clean in
        (clean, recon ~target_len:90 reads))
  in
  let avg pairs =
    Reconstruction.Recon_metrics.average_error (Reconstruction.Recon_metrics.per_index_error pairs)
  in
  let e_nw = avg (collect ((fun ~target_len reads -> Reconstruction.Nw_consensus.reconstruct ~target_len reads))) in
  let e_ens = avg (collect ((fun ~target_len reads -> Reconstruction.Ensemble.reconstruct ~target_len reads))) in
  Alcotest.(check bool)
    (Printf.sprintf "ensemble %.3f <= nw %.3f + slack" e_ens e_nw)
    true
    (e_ens <= e_nw +. 0.02)

let test_nw_full_outcome_fields () =
  let r = rng () in
  let clean = Dna.Strand.random r 60 in
  let out = Reconstruction.Nw_consensus.reconstruct_full ~target_len:60 [| clean; clean |] in
  Alcotest.(check int) "no trim" 0 out.Reconstruction.Nw_consensus.trimmed;
  Alcotest.(check int) "no pad" 0 out.Reconstruction.Nw_consensus.padded;
  Alcotest.check strand "consensus" clean out.Reconstruction.Nw_consensus.consensus

(* ---------- metrics ---------- *)

let test_metrics_per_index () =
  let a = Dna.Strand.of_string "ACGT" in
  let b = Dna.Strand.of_string "ACGA" in
  let profile = Reconstruction.Recon_metrics.per_index_error [ (a, b); (a, a) ] in
  Alcotest.(check (array (float 1e-9))) "profile" [| 0.0; 0.0; 0.0; 0.5 |] profile;
  Alcotest.(check (float 1e-9)) "average" 0.125 (Reconstruction.Recon_metrics.average_error profile)

let test_metrics_short_reconstruction_counts_errors () =
  let a = Dna.Strand.of_string "ACGT" in
  let short = Dna.Strand.of_string "AC" in
  let profile = Reconstruction.Recon_metrics.per_index_error [ (a, short) ] in
  Alcotest.(check (array (float 1e-9))) "missing tail is wrong" [| 0.0; 0.0; 1.0; 1.0 |] profile

let test_metrics_perfect_count () =
  let a = Dna.Strand.of_string "ACGT" and b = Dna.Strand.of_string "AAAA" in
  Alcotest.(check int) "count" 2
    (Reconstruction.Recon_metrics.perfect_count [ (a, a); (a, b); (b, b) ])

let test_metrics_abs_deviation () =
  Alcotest.(check (float 1e-9)) "deviation" 0.25
    (Reconstruction.Recon_metrics.average_abs_deviation [| 0.0; 0.5 |] [| 0.5; 0.5 |]);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Reconstruction.Recon_metrics.average_abs_deviation [||] [| 0.1 |])

(* ---------- QCheck ---------- *)

let arb_cluster =
  QCheck.make
    ~print:(fun (clean, n) -> Printf.sprintf "%s x%d" (Dna.Strand.to_string clean) n)
    QCheck.Gen.(
      let* len = int_range 10 60 in
      let* n = int_range 1 8 in
      let* codes = array_size (return len) (int_range 0 3) in
      return (Dna.Strand.of_codes codes, n))

let prop_noiseless_identity =
  QCheck.Test.make ~name:"all algorithms exact on identical reads" ~count:80 arb_cluster
    (fun (clean, n) ->
      let reads = Array.make n clean in
      let len = Dna.Strand.length clean in
      List.for_all
        (fun (_, recon) -> Dna.Strand.equal clean (recon ~target_len:len reads))
        algorithms)

let prop_output_length =
  QCheck.Test.make ~name:"output length equals target" ~count:60
    (QCheck.pair arb_cluster (QCheck.int_bound 1000))
    (fun ((clean, n), seed) ->
      let r = Dna.Rng.create seed in
      let ch = Simulator.Iid_channel.create_rate ~error_rate:0.1 in
      let reads = Array.init n (fun _ -> Simulator.Channel.transmit ch r clean) in
      let len = Dna.Strand.length clean in
      List.for_all
        (fun (_, recon) -> Dna.Strand.length (recon ~target_len:len reads) = len)
        algorithms)

let () =
  Alcotest.run "reconstruction"
    [
      ( "exactness",
        [
          Alcotest.test_case "noiseless cluster" `Quick test_noiseless_cluster_exact;
          Alcotest.test_case "single read" `Quick test_single_read_cluster;
          Alcotest.test_case "output length" `Quick test_output_length_always_target;
          Alcotest.test_case "empty rejected" `Quick test_empty_cluster_rejected;
          Alcotest.test_case "majority substitution" `Quick test_majority_substitution_corrected;
          Alcotest.test_case "single deletion" `Quick test_single_deletion_realigned;
        ] );
      ( "statistical",
        [
          Alcotest.test_case "iid6 cov10 mostly perfect" `Quick test_iid6_coverage10_mostly_perfect;
          Alcotest.test_case "nw improves with coverage" `Quick test_nw_improves_with_coverage;
          Alcotest.test_case "bma error grows rightward" `Quick test_bma_error_grows_rightward;
          Alcotest.test_case "dbma peaks in middle" `Quick test_dbma_error_peaks_in_middle;
          Alcotest.test_case "nw flatter than dbma" `Quick test_nw_flatter_than_dbma;
        ] );
      ( "damage",
        [
          Alcotest.test_case "truncated reads" `Quick test_truncated_reads_tolerated;
          Alcotest.test_case "ensemble vs nw" `Quick test_ensemble_at_least_as_good_as_nw;
          Alcotest.test_case "trellis refines nw at sparse coverage" `Slow
            test_trellis_refines_nw_at_sparse_coverage;
          Alcotest.test_case "trellis rate estimation" `Quick test_trellis_rates_estimation;
          Alcotest.test_case "nw outcome fields" `Quick test_nw_full_outcome_fields;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "per index" `Quick test_metrics_per_index;
          Alcotest.test_case "short reconstruction" `Quick test_metrics_short_reconstruction_counts_errors;
          Alcotest.test_case "perfect count" `Quick test_metrics_perfect_count;
          Alcotest.test_case "abs deviation" `Quick test_metrics_abs_deviation;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_noiseless_identity; prop_output_length ] );
    ]
