(* Tests for the fault-injection harness and the graceful-degradation
   decode path: the scenario matrix never raises and honors its
   recovered-fraction floors, fault plans replay bit-identically, and
   malformed inputs surface as structured errors instead of exceptions. *)

let strand = Alcotest.testable Dna.Strand.pp Dna.Strand.equal

let random_file r n = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256))

(* ---------- scenario matrix ---------- *)

let scenario_file_bytes = 2000
let scenario_seeds = [ 1; 2 ]

let run_scenario sc seed =
  let plan = Dnastore.Faults.plan_of_scenario ~seed sc in
  let file = random_file (Dna.Rng.create (0xF11E + seed)) scenario_file_bytes in
  (file, Dnastore.Pipeline.run ~faults:plan (Dna.Rng.create seed) file)

let test_scenarios_never_raise_and_meet_floors () =
  List.iter
    (fun sc ->
      List.iter
        (fun seed ->
          let name = sc.Dnastore.Faults.scenario_name in
          match run_scenario sc seed with
          | exception e ->
              Alcotest.fail
                (Printf.sprintf "%s seed %d raised %s" name seed (Printexc.to_string e))
          | _, out ->
              let frac =
                out.Dnastore.Pipeline.partial.Codec.File_codec.recovered_fraction
              in
              Alcotest.(check bool)
                (Printf.sprintf "%s seed %d: recovered %.4f >= floor %.2f" name seed frac
                   sc.Dnastore.Faults.min_recovered)
                true
                (frac >= sc.Dnastore.Faults.min_recovered -. 1e-9))
        scenario_seeds)
    Dnastore.Faults.scenarios

let test_scenario_replay_bit_identical () =
  List.iter
    (fun name ->
      let sc =
        match Dnastore.Faults.find_scenario name with
        | Some sc -> sc
        | None -> Alcotest.fail ("unknown scenario " ^ name)
      in
      let _, a = run_scenario sc 7 in
      let _, b = run_scenario sc 7 in
      let bytes_of out =
        match out.Dnastore.Pipeline.file with Some f -> Bytes.to_string f | None -> ""
      in
      Alcotest.(check string) (name ^ ": same decoded bytes") (bytes_of a) (bytes_of b);
      Alcotest.(check bool) (name ^ ": same partial record") true
        (a.Dnastore.Pipeline.partial = b.Dnastore.Pipeline.partial);
      Alcotest.(check int) (name ^ ": same read count") a.Dnastore.Pipeline.n_reads
        b.Dnastore.Pipeline.n_reads;
      Alcotest.(check int) (name ^ ": same cluster count") a.Dnastore.Pipeline.n_clusters
        b.Dnastore.Pipeline.n_clusters)
    [ "combined"; "dropout-20"; "undersample-50" ]

let test_stage_crash_degrades_not_raises () =
  let file = random_file (Dna.Rng.create 77) 600 in
  List.iter
    (fun stage ->
      let plan = Dnastore.Faults.plan ~seed:3 [ Dnastore.Faults.Stage_crash stage ] in
      let out = Dnastore.Pipeline.run ~faults:plan (Dna.Rng.create 3) file in
      Alcotest.(check bool)
        (Dnastore.Faults.stage_name stage ^ " crash recorded")
        true
        (List.exists (fun (s, _) -> s = stage) out.Dnastore.Pipeline.stage_failures))
    [ Dnastore.Faults.Encode; Dnastore.Faults.Simulate; Dnastore.Faults.Cluster;
      Dnastore.Faults.Reconstruct; Dnastore.Faults.Decode ]

let test_stuck_reconstruct_falls_back () =
  (* A stuck primary reconstructor must not lose the file: the fallback
     chain (NW -> BMA -> majority) still produces a consensus. *)
  let file = random_file (Dna.Rng.create 78) 600 in
  let plan = Dnastore.Faults.plan ~seed:5 [ Dnastore.Faults.Stage_stuck Dnastore.Faults.Reconstruct ] in
  let out = Dnastore.Pipeline.run ~faults:plan (Dna.Rng.create 5) file in
  Alcotest.(check bool) "stuck stage recorded" true
    (List.exists (fun (s, _) -> s = Dnastore.Faults.Reconstruct) out.Dnastore.Pipeline.stage_failures);
  Alcotest.(check bool) "file still recovered" true out.Dnastore.Pipeline.exact

(* ---------- fault-stream determinism ---------- *)

let test_injection_deterministic_and_seed_sensitive () =
  let strands = Array.init 200 (fun i -> Dna.Strand.random (Dna.Rng.create (1000 + i)) 50) in
  let survivors seed =
    let plan = Dnastore.Faults.plan ~seed [ Dnastore.Faults.Strand_dropout 0.3 ] in
    Array.to_list (Array.map Dna.Strand.to_string (Dnastore.Faults.inject_strands plan strands))
  in
  Alcotest.(check (list string)) "same plan, same survivors" (survivors 9) (survivors 9);
  Alcotest.(check bool) "different seed, different survivors" false (survivors 9 = survivors 10)

let test_injection_independent_of_ambient_rng () =
  (* The fault stream must come from the plan seed alone: whatever the
     pipeline's rng drew beforehand cannot shift the injected sites. *)
  let strands = Array.init 100 (fun i -> Dna.Strand.random (Dna.Rng.create (2000 + i)) 40) in
  let plan = Dnastore.Faults.plan ~seed:21 [ Dnastore.Faults.Strand_dropout 0.25 ] in
  let ambient = Dna.Rng.create 4 in
  let a = Dnastore.Faults.inject_strands plan strands in
  for _ = 1 to 1234 do
    ignore (Dna.Rng.float ambient)
  done;
  let b = Dnastore.Faults.inject_strands plan strands in
  Alcotest.(check int) "same survivor count" (Array.length a) (Array.length b);
  Array.iteri (fun i s -> Alcotest.check strand "same survivor" a.(i) s) b

(* ---------- malformed-input decode paths ---------- *)

let encode_file n =
  let file = random_file (Dna.Rng.create 555) n in
  (file, Codec.File_codec.encode file)

let test_index_decode_truncated () =
  let s = Codec.Index.encode { Codec.Index.unit_id = 3; column = 1 } in
  for len = 0 to Codec.Index.nt_length - 1 do
    match Codec.Index.decode (Dna.Strand.sub s ~pos:0 ~len) with
    | Error (Codec.Index.Truncated { expected; got }) ->
        Alcotest.(check int) "expected" Codec.Index.nt_length expected;
        Alcotest.(check int) "got" len got
    | Error (Codec.Index.Bad_checksum _) -> Alcotest.fail "truncation misreported as checksum"
    | Ok _ -> Alcotest.fail "truncated index accepted"
  done

let test_constrained_decode_too_short () =
  let data = Bytes.of_string "0123456789" in
  let s = Codec.Constrained.encode data in
  let short = Dna.Strand.sub s ~pos:0 ~len:(Dna.Strand.length s / 2) in
  match Codec.Constrained.decode ~n_bytes:(Bytes.length data) short with
  | Error (Codec.Constrained.Too_short _) -> ()
  | Error e -> Alcotest.fail (Codec.Constrained.error_message e)
  | Ok _ -> Alcotest.fail "short strand accepted"

let test_decode_truncated_strands_never_raise () =
  let _, enc = encode_file 700 in
  let r = Dna.Rng.create 31 in
  let truncated =
    Array.to_list
      (Array.map
         (fun s ->
           let len = 1 + Dna.Rng.int r (Dna.Strand.length s) in
           Dna.Strand.sub s ~pos:0 ~len)
         enc.Codec.File_codec.strands)
  in
  match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units truncated with
  | Ok (_, stats) ->
      Alcotest.(check bool) "truncation surfaced in stats" true
        (stats.Codec.File_codec.unparsable_strands > 0 || not (Codec.File_codec.fully_recovered stats))
  | Error _ -> () (* structured failure is acceptable; raising is not *)

let test_decode_corrupt_index_counted () =
  let file, enc = encode_file 400 in
  let r = Dna.Rng.create 32 in
  (* Replace the index region of 5 strands with random bases: they must
     be rejected by the checksum and counted, not misplaced. *)
  let strands = Array.copy enc.Codec.File_codec.strands in
  for i = 0 to 4 do
    let s = strands.(i) in
    strands.(i) <-
      Dna.Strand.append
        (Dna.Strand.random r Codec.Index.nt_length)
        (Dna.Strand.sub s ~pos:Codec.Index.nt_length
           ~len:(Dna.Strand.length s - Codec.Index.nt_length))
  done;
  match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units (Array.to_list strands) with
  | Ok (decoded, _) -> Alcotest.(check bytes) "erasures within budget" file decoded
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_decode_duplicate_unit_ids_first_wins () =
  let file, enc = encode_file 500 in
  let r = Dna.Rng.create 33 in
  (* Conflicting duplicates carrying valid indices but garbage payloads,
     fed *after* the clean strands: the first parsed copy must win. *)
  let impostors =
    List.init 10 (fun i ->
        let s = enc.Codec.File_codec.strands.(i) in
        Dna.Strand.append
          (Dna.Strand.sub s ~pos:0 ~len:Codec.Index.nt_length)
          (Dna.Strand.random r (Dna.Strand.length s - Codec.Index.nt_length)))
  in
  let strands = Array.to_list enc.Codec.File_codec.strands @ impostors in
  match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units strands with
  | Ok (decoded, _) -> Alcotest.(check bytes) "first copy wins" file decoded
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)

let test_decode_empty_strand_list () =
  let _, enc = encode_file 300 in
  match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units [] with
  | Error _ -> ()
  | Ok (decoded, stats) ->
      (* Acceptable only as an honest all-lost partial, never as a
         silently "recovered" file. *)
      let p =
        Codec.File_codec.partial ~params:Codec.Params.default ~file_len:(Bytes.length decoded)
          stats
      in
      Alcotest.(check (float 1e-9)) "nothing recovered" 0.0
        p.Codec.File_codec.recovered_fraction

let test_decode_invalid_arguments () =
  let _, enc = encode_file 300 in
  let strands = Array.to_list enc.Codec.File_codec.strands in
  (match Codec.File_codec.decode ~n_units:(-1) strands with
  | Error (Codec.File_codec.Invalid_params _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "negative n_units accepted");
  match Codec.File_codec.decode ~n_units:(Codec.Index.max_unit + 2) strands with
  | Error (Codec.File_codec.Invalid_params _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "oversized n_units accepted"

let test_decode_fuzz_never_raises () =
  (* Seeded fuzz: random byte-flips, truncations and dropouts over the
     encoded pool. Decode must return Ok or Error, never raise. *)
  let file, enc = encode_file 700 in
  let r = Dna.Rng.create 0xFACE in
  for _ = 1 to 60 do
    let mangled =
      Array.to_list enc.Codec.File_codec.strands
      |> List.filter_map (fun s ->
             if Dna.Rng.float r < 0.1 then None (* dropout *)
             else begin
               let codes = Dna.Strand.to_codes s in
               let flips = Dna.Rng.int r 8 in
               for _ = 1 to flips do
                 let p = Dna.Rng.int r (Array.length codes) in
                 codes.(p) <- (codes.(p) + 1 + Dna.Rng.int r 3) land 3
               done;
               let s = Dna.Strand.of_codes codes in
               if Dna.Rng.float r < 0.1 then
                 Some (Dna.Strand.sub s ~pos:0 ~len:(1 + Dna.Rng.int r (Dna.Strand.length s)))
               else Some s
             end)
    in
    match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units mangled with
    | Ok (decoded, stats) ->
        (* When every codeword decoded, the bytes must be right: no
           silent corruption under the fuzzer either. *)
        if Codec.File_codec.fully_recovered stats then
          Alcotest.(check bytes) "fully recovered implies exact" file decoded
    | Error _ -> ()
    | exception e -> Alcotest.fail ("decode raised " ^ Printexc.to_string e)
  done

(* ---------- partial-recovery mapping ---------- *)

let test_partial_recovery_maps_lost_unit () =
  (* Drop every strand of unit 1 of a 3-unit file: its bytes must be
     reported lost, the other units' bytes recovered. *)
  let file, enc = encode_file 1400 in
  Alcotest.(check bool) "needs >= 3 units" true (enc.Codec.File_codec.n_units >= 3);
  let survivors =
    Array.to_list enc.Codec.File_codec.strands
    |> List.filter (fun s ->
           match Codec.Index.decode (Dna.Strand.sub s ~pos:0 ~len:Codec.Index.nt_length) with
           | Ok idx -> idx.Codec.Index.unit_id <> 1
           | Error _ -> true)
  in
  match Codec.File_codec.decode ~n_units:enc.Codec.File_codec.n_units survivors with
  | Error e -> Alcotest.fail (Codec.File_codec.error_message e)
  | Ok (decoded, stats) ->
      let p =
        Codec.File_codec.partial ~params:Codec.Params.default
          ~file_len:(Bytes.length decoded) stats
      in
      (match p.Codec.File_codec.unit_status.(1) with
      | Codec.File_codec.Lost -> ()
      | _ -> Alcotest.fail "unit 1 not reported lost");
      (match p.Codec.File_codec.unit_status.(0) with
      | Codec.File_codec.Recovered -> ()
      | _ -> Alcotest.fail "unit 0 not recovered");
      Alcotest.(check bool) "fraction strictly between 0 and 1" true
        (p.Codec.File_codec.recovered_fraction > 0.0
        && p.Codec.File_codec.recovered_fraction < 1.0);
      (* Every reported range must hold bytes identical to the input. *)
      List.iter
        (fun (a, b) ->
          Alcotest.(check bytes)
            (Printf.sprintf "range [%d,%d) intact" a b)
            (Bytes.sub file a (b - a))
            (Bytes.sub decoded a (b - a)))
        p.Codec.File_codec.recovered_ranges

(* ---------- typed errors in primers and the kv store ---------- *)

let test_primer_attempt_cap_is_typed () =
  match Codec.Primer.generate ~min_distance:20 ~max_attempts:50 (Dna.Rng.create 1) 64 with
  | Error (Codec.Primer.Constraints_unsatisfiable { requested; generated; attempts }) ->
      Alcotest.(check int) "requested" 64 requested;
      Alcotest.(check bool) "partial progress reported" true (generated < requested);
      Alcotest.(check int) "attempt cap honored" 50 attempts
  | Ok _ -> Alcotest.fail "unsatisfiable constraints satisfied"

let test_kv_duplicate_key_is_typed () =
  let store = Dnastore.Kv_store.create ~seed:41 in
  (match Dnastore.Kv_store.put store ~key:"x" (Bytes.of_string "data") with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Dnastore.Kv_store.put_error_message e));
  match Dnastore.Kv_store.put store ~key:"x" (Bytes.of_string "other") with
  | Error (Dnastore.Kv_store.Duplicate_key "x") -> ()
  | Error e -> Alcotest.fail (Dnastore.Kv_store.put_error_message e)
  | Ok () -> Alcotest.fail "duplicate key accepted"

let () =
  Alcotest.run "faults"
    [
      ( "scenarios",
        [
          Alcotest.test_case "never raise, floors met" `Slow
            test_scenarios_never_raise_and_meet_floors;
          Alcotest.test_case "replay bit-identical" `Slow test_scenario_replay_bit_identical;
          Alcotest.test_case "stage crashes degrade" `Quick test_stage_crash_degrades_not_raises;
          Alcotest.test_case "stuck reconstruct falls back" `Quick
            test_stuck_reconstruct_falls_back;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "seeded and seed-sensitive" `Quick
            test_injection_deterministic_and_seed_sensitive;
          Alcotest.test_case "independent of ambient rng" `Quick
            test_injection_independent_of_ambient_rng;
        ] );
      ( "malformed-input",
        [
          Alcotest.test_case "truncated index" `Quick test_index_decode_truncated;
          Alcotest.test_case "short constrained strand" `Quick test_constrained_decode_too_short;
          Alcotest.test_case "truncated strands" `Quick test_decode_truncated_strands_never_raise;
          Alcotest.test_case "corrupt index counted" `Quick test_decode_corrupt_index_counted;
          Alcotest.test_case "duplicate unit ids" `Quick test_decode_duplicate_unit_ids_first_wins;
          Alcotest.test_case "empty strand list" `Quick test_decode_empty_strand_list;
          Alcotest.test_case "invalid arguments" `Quick test_decode_invalid_arguments;
          Alcotest.test_case "fuzz never raises" `Quick test_decode_fuzz_never_raises;
        ] );
      ( "partial-recovery",
        [ Alcotest.test_case "lost unit mapped" `Quick test_partial_recovery_maps_lost_unit ] );
      ( "typed-errors",
        [
          Alcotest.test_case "primer attempt cap" `Quick test_primer_attempt_cap_is_typed;
          Alcotest.test_case "kv duplicate key" `Quick test_kv_duplicate_key_is_typed;
        ] );
    ]
