(* Equivalence of the bit-parallel (Myers) distance kernels with the
   scalar two-row DP oracle. The bit-parallel kernels are exact, so on
   every input the two backends must agree bit for bit: on the full
   distance (single-word and blocked kernels), on the thresholded
   [levenshtein_leq] (both [Some] and [None] outcomes), and on the
   banded variant inside its band. *)

let seeds = [ 1; 7; 42 ]

let scalar = Dna.Distance.Scalar
let myers = Dna.Distance.Bitparallel

let lev ~backend a b = Dna.Distance.levenshtein ~backend a b
let leq ~backend ~bound a b = Dna.Distance.levenshtein_leq ~backend ~bound a b

let check_pair a b =
  let ds = lev ~backend:scalar a b in
  let dm = lev ~backend:myers a b in
  Alcotest.(check int)
    (Printf.sprintf "full distance (%d vs %d nt)" (Dna.Strand.length a) (Dna.Strand.length b))
    ds dm;
  (* leq must agree with the exact distance at bounds below, at and
     above it, plus the extremes. *)
  List.iter
    (fun bound ->
      let expect = if ds <= bound then Some ds else None in
      Alcotest.(check (option int))
        (Printf.sprintf "leq bound=%d exact=%d" bound ds)
        expect
        (leq ~backend:myers ~bound a b);
      Alcotest.(check (option int))
        (Printf.sprintf "scalar leq bound=%d exact=%d" bound ds)
        expect
        (leq ~backend:scalar ~bound a b))
    [ 0; 1; ds - 1; ds; ds + 1; 40; max (Dna.Strand.length a) (Dna.Strand.length b) ];
  (* Banded is exact whenever the band covers the true distance. *)
  if ds <= 10 then
    Alcotest.(check int) "banded exact within band" ds
      (Dna.Distance.levenshtein_banded ~backend:myers ~band:10 a b)

(* A mutated copy: substitutions, insertions and deletions at ~[rate]
   each, so sibling pairs have small distances and ragged lengths. *)
let mutate rng rate s =
  let buf = Buffer.create (Dna.Strand.length s + 8) in
  Dna.Strand.iter
    (fun b ->
      let c = Dna.Nucleotide.to_char b in
      let r = Dna.Rng.float rng in
      if r < rate then Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4)
      else if r < 2.0 *. rate then begin
        Buffer.add_char buf c;
        Buffer.add_char buf Dna.Strand.char_of_code.(Dna.Rng.int rng 4)
      end
      else if r < 3.0 *. rate then () (* deletion *)
      else Buffer.add_char buf c)
    s;
  Dna.Strand.of_string (Buffer.contents buf)

let test_random_pairs () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      for _ = 1 to 400 do
        let la = Dna.Rng.int rng 301 and lb = Dna.Rng.int rng 301 in
        let a = Dna.Strand.random rng la in
        let b =
          if Dna.Rng.int rng 2 = 0 then Dna.Strand.random rng lb else mutate rng 0.05 a
        in
        check_pair a b
      done)
    seeds

let test_equal_strands () =
  let rng = Dna.Rng.create 11 in
  List.iter
    (fun n ->
      let a = Dna.Strand.random rng n in
      Alcotest.(check int) "equal strands scalar" 0 (lev ~backend:scalar a a);
      Alcotest.(check int) "equal strands myers" 0 (lev ~backend:myers a a);
      Alcotest.(check (option int)) "equal strands leq" (Some 0) (leq ~backend:myers ~bound:0 a a))
    [ 0; 1; 30; 63; 64; 65; 120; 300 ]

let test_empty_vs_nonempty () =
  let rng = Dna.Rng.create 13 in
  List.iter
    (fun n ->
      let a = Dna.Strand.random rng n in
      let e = Dna.Strand.empty in
      Alcotest.(check int) "empty vs strand" n (lev ~backend:myers e a);
      Alcotest.(check int) "strand vs empty" n (lev ~backend:myers a e);
      Alcotest.(check (option int)) "empty leq at n" (Some n) (leq ~backend:myers ~bound:n e a);
      (* bound = n - 1 is below the true distance n; for n = 0 it is
         negative, which the contract also maps to [None]. *)
      Alcotest.(check (option int)) "empty leq below n" None (leq ~backend:myers ~bound:(n - 1) e a))
    [ 0; 1; 63; 64; 65; 200 ]

(* Lengths straddling the 63-bit word boundary exercise the carry
   between the single-word and blocked kernels (and the final-block
   bookkeeping of the thresholded one). *)
let test_word_boundary () =
  List.iter
    (fun seed ->
      let rng = Dna.Rng.create seed in
      let lens = [ 62; 63; 64; 65; 126; 127; 128 ] in
      List.iter
        (fun la ->
          List.iter
            (fun lb ->
              let a = Dna.Strand.random rng la in
              check_pair a (Dna.Strand.random rng lb);
              check_pair a (mutate rng 0.05 a))
            lens)
        lens)
    seeds

(* Both outcomes of the merge test must actually occur and agree with
   the oracle on clustering-shaped inputs (sibling and unrelated pairs
   at the paper's strand lengths and thresholds). *)
let test_leq_outcomes () =
  let rng = Dna.Rng.create 5 in
  let le = ref 0 and gt = ref 0 in
  for _ = 1 to 300 do
    let a = Dna.Strand.random rng 120 in
    let b = if Dna.Rng.int rng 2 = 0 then Dna.Strand.random rng 120 else mutate rng 0.06 a in
    let bound = 40 in
    let s = leq ~backend:scalar ~bound a b in
    let m = leq ~backend:myers ~bound a b in
    Alcotest.(check (option int)) "leq agreement" s m;
    match m with Some _ -> incr le | None -> incr gt
  done;
  Alcotest.(check bool) "saw Le outcomes" true (!le > 0);
  Alcotest.(check bool) "saw Gt outcomes" true (!gt > 0)

(* The process-wide default backend drives the dispatch when [?backend]
   is omitted. *)
let test_default_backend_dispatch () =
  let saved = Dna.Distance.current_default_backend () in
  Fun.protect
    ~finally:(fun () -> Dna.Distance.set_default_backend saved)
    (fun () ->
      let rng = Dna.Rng.create 3 in
      let a = Dna.Strand.random rng 120 and b = Dna.Strand.random rng 120 in
      let d = Dna.Distance.levenshtein ~backend:scalar a b in
      List.iter
        (fun backend ->
          Dna.Distance.set_default_backend backend;
          Alcotest.(check int)
            (Printf.sprintf "default %s" (Dna.Distance.backend_name backend))
            d (Dna.Distance.levenshtein a b))
        [ Dna.Distance.Auto; Dna.Distance.Scalar; Dna.Distance.Bitparallel ])

(* Structure of the cached Eq masks: one word-set per base code, bit i of
   word w set exactly when base w*63+i has that code. *)
let test_eq_masks_structure () =
  let rng = Dna.Rng.create 17 in
  List.iter
    (fun n ->
      let s = Dna.Strand.random rng n in
      let masks = Dna.Strand.eq_masks s in
      let words = (n + Dna.Strand.mask_bits - 1) / Dna.Strand.mask_bits in
      Alcotest.(check int) "mask array size" (4 * words) (Array.length masks);
      for i = 0 to n - 1 do
        let w = i / Dna.Strand.mask_bits and bit = i mod Dna.Strand.mask_bits in
        for c = 0 to 3 do
          let set = masks.((c * words) + w) land (1 lsl bit) <> 0 in
          Alcotest.(check bool)
            (Printf.sprintf "mask bit len=%d i=%d code=%d" n i c)
            (Dna.Strand.get_code s i = c)
            set
        done
      done;
      Alcotest.(check bool) "cache returns same array" true (masks == Dna.Strand.eq_masks s))
    [ 1; 62; 63; 64; 65; 130 ]

let () =
  Alcotest.run "distance"
    [
      ( "myers-vs-scalar",
        [
          Alcotest.test_case "random pairs 0-300nt, 3 seeds" `Quick test_random_pairs;
          Alcotest.test_case "equal strands" `Quick test_equal_strands;
          Alcotest.test_case "empty vs non-empty" `Quick test_empty_vs_nonempty;
          Alcotest.test_case "63/64/65 word boundary" `Quick test_word_boundary;
          Alcotest.test_case "leq Le and Gt outcomes" `Quick test_leq_outcomes;
          Alcotest.test_case "default backend dispatch" `Quick test_default_backend_dispatch;
        ] );
      ("eq-masks", [ Alcotest.test_case "structure and caching" `Quick test_eq_masks_structure ]);
    ]
