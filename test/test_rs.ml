(* Tests for GF(256) arithmetic and the Reed-Solomon codec. *)

let rng = Dna.Rng.create 777

(* ---------- GF(256) ---------- *)

let test_gf_add_self_inverse () =
  for a = 0 to 255 do
    Alcotest.(check int) "a+a=0" 0 (Rs.Gf256.add a a)
  done

let test_gf_mul_identity () =
  for a = 0 to 255 do
    Alcotest.(check int) "a*1=a" a (Rs.Gf256.mul a 1);
    Alcotest.(check int) "a*0=0" 0 (Rs.Gf256.mul a 0)
  done

let test_gf_mul_commutative_sampled () =
  for _ = 1 to 2000 do
    let a = Dna.Rng.int rng 256 and b = Dna.Rng.int rng 256 in
    Alcotest.(check int) "commutative" (Rs.Gf256.mul a b) (Rs.Gf256.mul b a)
  done

let test_gf_mul_associative_sampled () =
  for _ = 1 to 2000 do
    let a = Dna.Rng.int rng 256 and b = Dna.Rng.int rng 256 and c = Dna.Rng.int rng 256 in
    Alcotest.(check int) "associative" (Rs.Gf256.mul (Rs.Gf256.mul a b) c) (Rs.Gf256.mul a (Rs.Gf256.mul b c))
  done

let test_gf_distributive_sampled () =
  for _ = 1 to 2000 do
    let a = Dna.Rng.int rng 256 and b = Dna.Rng.int rng 256 and c = Dna.Rng.int rng 256 in
    Alcotest.(check int) "distributive" (Rs.Gf256.mul a (Rs.Gf256.add b c))
      (Rs.Gf256.add (Rs.Gf256.mul a b) (Rs.Gf256.mul a c))
  done

let test_gf_inverse () =
  for a = 1 to 255 do
    Alcotest.(check int) "a * a^-1 = 1" 1 (Rs.Gf256.mul a (Rs.Gf256.inv a))
  done;
  Alcotest.check_raises "inv 0" Division_by_zero (fun () -> ignore (Rs.Gf256.inv 0))

let test_gf_div () =
  for _ = 1 to 2000 do
    let a = Dna.Rng.int rng 256 and b = 1 + Dna.Rng.int rng 255 in
    Alcotest.(check int) "(a/b)*b = a" a (Rs.Gf256.mul (Rs.Gf256.div a b) b)
  done

let test_gf_pow () =
  Alcotest.(check int) "a^0 = 1" 1 (Rs.Gf256.pow 7 0);
  Alcotest.(check int) "a^1 = a" 7 (Rs.Gf256.pow 7 1);
  for _ = 1 to 500 do
    let a = 1 + Dna.Rng.int rng 255 in
    let n = Dna.Rng.int rng 20 in
    let expected = ref 1 in
    for _ = 1 to n do
      expected := Rs.Gf256.mul !expected a
    done;
    Alcotest.(check int) "pow = repeated mul" !expected (Rs.Gf256.pow a n)
  done;
  (* Zero base: positive powers vanish, 0^0 = 1 by convention, and a
     negative power of 0 is an inverse of 0 and must fail like inv. *)
  Alcotest.(check int) "0^3 = 0" 0 (Rs.Gf256.pow 0 3);
  Alcotest.(check int) "0^0 = 1" 1 (Rs.Gf256.pow 0 0);
  Alcotest.check_raises "0^-1" Division_by_zero (fun () -> ignore (Rs.Gf256.pow 0 (-1)));
  Alcotest.check_raises "0^-7" Division_by_zero (fun () -> ignore (Rs.Gf256.pow 0 (-7)))

let test_gf_alpha_order () =
  (* alpha = 2 is primitive: alpha^255 = 1 and no smaller power is 1. *)
  Alcotest.(check int) "alpha^255 = 1" 1 (Rs.Gf256.alpha_pow 255);
  for i = 1 to 254 do
    Alcotest.(check bool) "no smaller cycle" true (Rs.Gf256.alpha_pow i <> 1)
  done

let test_poly_eval_horner () =
  (* p(x) = 3x^2 + 5x + 7 over GF(256) at x=2: 3*4 xor 5*2 xor 7 *)
  let p = [| 3; 5; 7 |] in
  let expected = Rs.Gf256.add (Rs.Gf256.add (Rs.Gf256.mul 3 (Rs.Gf256.mul 2 2)) (Rs.Gf256.mul 5 2)) 7 in
  Alcotest.(check int) "horner" expected (Rs.Gf256.Poly.eval p 2)

let test_poly_mul_degree () =
  let p = [| 1; 2 |] and q = [| 1; 3 |] in
  let r = Rs.Gf256.Poly.mul p q in
  Alcotest.(check int) "degree adds" 3 (Array.length r);
  (* (x+2)(x+3) = x^2 + (2 xor 3) x + 6 *)
  Alcotest.(check (array int)) "product" [| 1; 1; 6 |] r

let test_poly_normalize () =
  Alcotest.(check (array int)) "strips zeros" [| 1; 2 |] (Rs.Gf256.Poly.normalize [| 0; 0; 1; 2 |]);
  Alcotest.(check (array int)) "keeps at least one" [| 0 |] (Rs.Gf256.Poly.normalize [| 0; 0 |])

(* ---------- Reed-Solomon ---------- *)

let random_msg k = Array.init k (fun _ -> Dna.Rng.int rng 256)

let test_rs_encode_systematic () =
  let code = Rs.create ~k:12 ~nsym:6 in
  let msg = random_msg 12 in
  let cw = Rs.encode_arr code msg in
  Alcotest.(check int) "codeword length" 18 (Array.length cw);
  Alcotest.(check (array int)) "systematic prefix" msg (Array.sub cw 0 12);
  Alcotest.(check bool) "valid codeword" true (Rs.is_codeword code cw)

let test_rs_decode_clean () =
  let code = Rs.create ~k:10 ~nsym:4 in
  let msg = random_msg 10 in
  let cw = Rs.encode_arr code msg in
  match Rs.decode_arr code cw with
  | Ok d ->
      Alcotest.(check (array int)) "message" msg d.Rs.message;
      Alcotest.(check (list int)) "nothing corrected" [] d.Rs.corrected
  | Error e -> Alcotest.fail e

let corrupt cw positions =
  let noisy = Array.copy cw in
  List.iter (fun p -> noisy.(p) <- noisy.(p) lxor (1 + Dna.Rng.int rng 255)) positions;
  noisy

let distinct_positions n k =
  Array.to_list (Dna.Rng.sample_indices rng ~n ~k)

let test_rs_corrects_max_errors () =
  let code = Rs.create ~k:20 ~nsym:8 in
  for _ = 1 to 100 do
    let msg = random_msg 20 in
    let cw = Rs.encode_arr code msg in
    let pos = distinct_positions 28 4 in
    match Rs.decode_arr code (corrupt cw pos) with
    | Ok d -> Alcotest.(check (array int)) "recovered" msg d.Rs.message
    | Error e -> Alcotest.fail ("4 errors with nsym 8: " ^ e)
  done

let test_rs_corrects_erasures_only () =
  let code = Rs.create ~k:20 ~nsym:8 in
  for _ = 1 to 100 do
    let msg = random_msg 20 in
    let cw = Rs.encode_arr code msg in
    let pos = distinct_positions 28 8 in
    match Rs.decode_arr ~erasures:pos code (corrupt cw pos) with
    | Ok d -> Alcotest.(check (array int)) "recovered" msg d.Rs.message
    | Error e -> Alcotest.fail ("8 erasures with nsym 8: " ^ e)
  done

let test_rs_corrects_mixed () =
  let code = Rs.create ~k:20 ~nsym:8 in
  for _ = 1 to 100 do
    let msg = random_msg 20 in
    let cw = Rs.encode_arr code msg in
    (* 2 errors + 4 erasures: 2*2 + 4 = 8 = nsym *)
    let pos = distinct_positions 28 6 in
    let erasures = List.filteri (fun i _ -> i < 4) pos in
    match Rs.decode_arr ~erasures code (corrupt cw pos) with
    | Ok d -> Alcotest.(check (array int)) "recovered" msg d.Rs.message
    | Error e -> Alcotest.fail ("2 errors + 4 erasures: " ^ e)
  done

let test_rs_detects_overload () =
  (* Beyond capacity the decoder must fail or miscorrect loudly, never
     claim the original message. With 6 random errors against nsym 8 it
     should essentially always report failure. *)
  let code = Rs.create ~k:20 ~nsym:8 in
  let failures = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    let msg = random_msg 20 in
    let cw = Rs.encode_arr code msg in
    let pos = distinct_positions 28 6 in
    match Rs.decode_arr code (corrupt cw pos) with
    | Ok d -> if d.Rs.message <> msg then incr failures
    | Error _ -> incr failures
  done;
  Alcotest.(check bool) "mostly detected" true (!failures >= trials - 2)

let test_rs_erasure_positions_validated () =
  let code = Rs.create ~k:4 ~nsym:2 in
  let cw = Rs.encode_arr code (random_msg 4) in
  (match Rs.decode_arr ~erasures:[ 99 ] code cw with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range erasure accepted");
  match Rs.decode_arr ~erasures:[ 0; 1; 2 ] code cw with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "too many erasures accepted"

let test_rs_create_validation () =
  Alcotest.check_raises "n > 255"
    (Invalid_argument "Rs.create: need k > 0, nsym > 0, k + nsym <= 255") (fun () ->
      ignore (Rs.create ~k:250 ~nsym:10))

let test_rs_bytes_interface () =
  let code = Rs.create ~k:8 ~nsym:4 in
  let msg = Bytes.of_string "codeword" in
  let cw = Rs.encode code msg in
  Alcotest.(check int) "length" 12 (Bytes.length cw);
  let noisy = Bytes.copy cw in
  Bytes.set noisy 3 'X';
  Bytes.set noisy 10 '!';
  match Rs.decode code noisy with
  | Ok m -> Alcotest.(check bytes) "recovered" msg m
  | Error e -> Alcotest.fail e

let test_rs_various_sizes () =
  List.iter
    (fun (k, nsym) ->
      let code = Rs.create ~k ~nsym in
      let msg = random_msg k in
      let cw = Rs.encode_arr code msg in
      let pos = distinct_positions (k + nsym) (nsym / 2) in
      match Rs.decode_arr code (corrupt cw pos) with
      | Ok d ->
          Alcotest.(check (array int))
            (Printf.sprintf "k=%d nsym=%d" k nsym)
            msg d.Rs.message
      | Error e -> Alcotest.fail (Printf.sprintf "k=%d nsym=%d: %s" k nsym e))
    [ (1, 2); (5, 2); (20, 6); (50, 16); (100, 32); (223, 32); (128, 64) ]

(* ---------- QCheck properties ---------- *)

let arb_params =
  QCheck.make
    ~print:(fun (k, nsym, _) -> Printf.sprintf "k=%d nsym=%d" k nsym)
    QCheck.Gen.(
      let* k = int_range 1 60 in
      let* nsym = int_range 2 16 in
      let* seed = int_range 0 1_000_000 in
      return (k, nsym, seed))

let prop_rs_roundtrip_with_errors =
  QCheck.Test.make ~name:"rs corrects <= nsym/2 errors" ~count:150 arb_params
    (fun (k, nsym, seed) ->
      let r = Dna.Rng.create seed in
      let code = Rs.create ~k ~nsym in
      let msg = Array.init k (fun _ -> Dna.Rng.int r 256) in
      let cw = Rs.encode_arr code msg in
      let n_err = Dna.Rng.int r ((nsym / 2) + 1) in
      let pos = Array.to_list (Dna.Rng.sample_indices r ~n:(k + nsym) ~k:n_err) in
      let noisy = Array.copy cw in
      List.iter (fun p -> noisy.(p) <- noisy.(p) lxor (1 + Dna.Rng.int r 255)) pos;
      match Rs.decode_arr code noisy with
      | Ok d -> d.Rs.message = msg
      | Error _ -> false)

let prop_rs_roundtrip_with_errata =
  QCheck.Test.make ~name:"rs corrects 2e+f <= nsym errata" ~count:150 arb_params
    (fun (k, nsym, seed) ->
      let r = Dna.Rng.create seed in
      let code = Rs.create ~k ~nsym in
      let msg = Array.init k (fun _ -> Dna.Rng.int r 256) in
      let cw = Rs.encode_arr code msg in
      let f = Dna.Rng.int r (nsym + 1) in
      let e = Dna.Rng.int r (((nsym - f) / 2) + 1) in
      let pos = Array.to_list (Dna.Rng.sample_indices r ~n:(k + nsym) ~k:(e + f)) in
      let erasures = List.filteri (fun i _ -> i < f) pos in
      let noisy = Array.copy cw in
      List.iter (fun p -> noisy.(p) <- noisy.(p) lxor (1 + Dna.Rng.int r 255)) pos;
      match Rs.decode_arr ~erasures code noisy with
      | Ok d -> d.Rs.message = msg
      | Error _ -> false)

let () =
  Alcotest.run "rs"
    [
      ( "gf256",
        [
          Alcotest.test_case "add self inverse" `Quick test_gf_add_self_inverse;
          Alcotest.test_case "mul identity" `Quick test_gf_mul_identity;
          Alcotest.test_case "mul commutative" `Quick test_gf_mul_commutative_sampled;
          Alcotest.test_case "mul associative" `Quick test_gf_mul_associative_sampled;
          Alcotest.test_case "distributive" `Quick test_gf_distributive_sampled;
          Alcotest.test_case "inverse" `Quick test_gf_inverse;
          Alcotest.test_case "division" `Quick test_gf_div;
          Alcotest.test_case "pow" `Quick test_gf_pow;
          Alcotest.test_case "alpha order 255" `Quick test_gf_alpha_order;
        ] );
      ( "poly",
        [
          Alcotest.test_case "eval horner" `Quick test_poly_eval_horner;
          Alcotest.test_case "mul" `Quick test_poly_mul_degree;
          Alcotest.test_case "normalize" `Quick test_poly_normalize;
        ] );
      ( "reed-solomon",
        [
          Alcotest.test_case "systematic encode" `Quick test_rs_encode_systematic;
          Alcotest.test_case "clean decode" `Quick test_rs_decode_clean;
          Alcotest.test_case "max errors" `Quick test_rs_corrects_max_errors;
          Alcotest.test_case "erasures only" `Quick test_rs_corrects_erasures_only;
          Alcotest.test_case "mixed errata" `Quick test_rs_corrects_mixed;
          Alcotest.test_case "overload detected" `Quick test_rs_detects_overload;
          Alcotest.test_case "erasure validation" `Quick test_rs_erasure_positions_validated;
          Alcotest.test_case "create validation" `Quick test_rs_create_validation;
          Alcotest.test_case "bytes interface" `Quick test_rs_bytes_interface;
          Alcotest.test_case "various sizes" `Quick test_rs_various_sizes;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_rs_roundtrip_with_errors; prop_rs_roundtrip_with_errata ] );
    ]
