(* Tests for the dna substrate library: RNG, nucleotides, strands,
   bitstream packing, randomizer, distances, alignment, POA, FASTA/FASTQ. *)

let rng () = Dna.Rng.create 12345

let strand = Alcotest.testable Dna.Strand.pp Dna.Strand.equal

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Dna.Rng.create 7 and b = Dna.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Dna.Rng.int a 1000) (Dna.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Dna.Rng.create 7 in
  let b = Dna.Rng.split a in
  let xs = List.init 50 (fun _ -> Dna.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Dna.Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Dna.Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejection_bounds () =
  (* Rejection sampling must stay in range (and terminate) across small,
     large and power-of-two-adjacent bounds, including max_int. *)
  let r = rng () in
  List.iter
    (fun bound ->
      for _ = 1 to 500 do
        let v = Dna.Rng.int r bound in
        Alcotest.(check bool)
          (Printf.sprintf "in [0,%d)" bound)
          true
          (v >= 0 && v < bound)
      done)
    [ 1; 2; 3; 17; (1 lsl 40) + 1; max_int ]

let test_rng_int_covers_residues () =
  (* With an unbiased draw every residue of a small bound appears
     quickly; a stuck or truncated generator would fail this. *)
  let r = rng () in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Dna.Rng.int r 7) <- true
  done;
  Alcotest.(check (array bool)) "all residues hit" (Array.make 7 true) seen

let test_rng_float_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Dna.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_poisson_mean () =
  let r = rng () in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dna.Rng.poisson r 10.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 9.5 && mean < 10.5)

let test_rng_geometric_support () =
  let r = rng () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "at least 1" true (Dna.Rng.geometric r 0.4 >= 1)
  done;
  Alcotest.(check int) "p=1 is always 1" 1 (Dna.Rng.geometric r 1.0)

let test_rng_shuffle_permutation () =
  let r = rng () in
  let a = Array.init 100 (fun i -> i) in
  Dna.Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_sample_indices_distinct () =
  let r = rng () in
  let s = Dna.Rng.sample_indices r ~n:50 ~k:20 in
  Alcotest.(check int) "20 samples" 20 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 20 (List.length distinct);
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 50)) s

(* ---------- Nucleotide ---------- *)

let test_nucleotide_roundtrip () =
  Array.iter
    (fun b ->
      Alcotest.(check char) "char roundtrip" (Dna.Nucleotide.to_char b)
        (Dna.Nucleotide.to_char (Dna.Nucleotide.of_char (Dna.Nucleotide.to_char b)));
      Alcotest.(check int) "code roundtrip" (Dna.Nucleotide.to_code b)
        (Dna.Nucleotide.to_code (Dna.Nucleotide.of_code (Dna.Nucleotide.to_code b))))
    Dna.Nucleotide.all

let test_nucleotide_complement_involutive () =
  Array.iter
    (fun b ->
      Alcotest.(check bool) "complement twice" true
        (Dna.Nucleotide.equal b Dna.Nucleotide.(complement (complement b))))
    Dna.Nucleotide.all

let test_nucleotide_random_other () =
  let r = rng () in
  for _ = 1 to 200 do
    let b = Dna.Nucleotide.random r in
    let o = Dna.Nucleotide.random_other r b in
    Alcotest.(check bool) "differs" false (Dna.Nucleotide.equal b o)
  done

let test_nucleotide_invalid_char () =
  Alcotest.check_raises "of_char 'N'" (Invalid_argument "Nucleotide.of_char: 'N'") (fun () ->
      ignore (Dna.Nucleotide.of_char 'N'))

(* ---------- Strand ---------- *)

let test_strand_of_string_roundtrip () =
  let s = "ACGTACGTTTGGCA" in
  Alcotest.(check string) "roundtrip" s (Dna.Strand.to_string (Dna.Strand.of_string s))

let test_strand_of_string_invalid () =
  Alcotest.(check bool) "invalid base rejected" true
    (Dna.Strand.of_string_opt "ACGX" = None)

let test_strand_reverse_complement () =
  let s = Dna.Strand.of_string "AACGT" in
  Alcotest.(check string) "revcomp" "ACGTT" (Dna.Strand.to_string (Dna.Strand.reverse_complement s));
  (* involution *)
  let r = rng () in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 30 in
    Alcotest.check strand "revcomp involutive" s
      (Dna.Strand.reverse_complement (Dna.Strand.reverse_complement s))
  done

let test_strand_gc_content () =
  Alcotest.(check (float 1e-9)) "all GC" 1.0 (Dna.Strand.gc_content (Dna.Strand.of_string "GGCC"));
  Alcotest.(check (float 1e-9)) "no GC" 0.0 (Dna.Strand.gc_content (Dna.Strand.of_string "ATAT"));
  Alcotest.(check (float 1e-9)) "half" 0.5 (Dna.Strand.gc_content (Dna.Strand.of_string "ACGT"));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Dna.Strand.gc_content Dna.Strand.empty)

let test_strand_max_homopolymer () =
  Alcotest.(check int) "empty" 0 (Dna.Strand.max_homopolymer Dna.Strand.empty);
  Alcotest.(check int) "single" 1 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "A"));
  Alcotest.(check int) "run of 4" 4 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "ACGGGGTA"));
  Alcotest.(check int) "run at end" 3 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "ACGTTT"))

let test_strand_find () =
  let s = Dna.Strand.of_string "ACGTACGT" in
  Alcotest.(check (option int)) "find CGT" (Some 1)
    (Dna.Strand.find s ~pattern:(Dna.Strand.of_string "CGT"));
  Alcotest.(check (option int)) "find from 2" (Some 5)
    (Dna.Strand.find ~from:2 s ~pattern:(Dna.Strand.of_string "CGT"));
  Alcotest.(check (option int)) "absent" None
    (Dna.Strand.find s ~pattern:(Dna.Strand.of_string "TTT"));
  Alcotest.(check (option int)) "empty pattern" (Some 0)
    (Dna.Strand.find s ~pattern:Dna.Strand.empty)

let test_strand_codes () =
  let r = rng () in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 40 in
    Alcotest.check strand "codes roundtrip" s (Dna.Strand.of_codes (Dna.Strand.to_codes s))
  done

let test_strand_sub_concat () =
  let s = Dna.Strand.of_string "ACGTACGT" in
  let a = Dna.Strand.sub s ~pos:0 ~len:4 and b = Dna.Strand.sub s ~pos:4 ~len:4 in
  Alcotest.check strand "split+concat" s (Dna.Strand.concat [ a; b ]);
  Alcotest.check strand "append" s (Dna.Strand.append a b)

let test_strand_count () =
  let s = Dna.Strand.of_string "AACGTA" in
  Alcotest.(check int) "count A" 3 (Dna.Strand.count s Dna.Nucleotide.A);
  Alcotest.(check int) "count G" 1 (Dna.Strand.count s Dna.Nucleotide.G)

(* ---------- Bitstream ---------- *)

let test_bitstream_bytes_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Dna.Rng.int r 64 in
    let b = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let s = Dna.Bitstream.strand_of_bytes b in
    Alcotest.(check int) "4 bases per byte" (4 * n) (Dna.Strand.length s);
    Alcotest.(check bytes) "roundtrip" b (Dna.Bitstream.bytes_of_strand s)
  done

let test_bitstream_writer_reader () =
  let w = Dna.Bitstream.Writer.create () in
  Dna.Bitstream.Writer.add w ~width:3 5;
  Dna.Bitstream.Writer.add w ~width:11 1027;
  Dna.Bitstream.Writer.add w ~width:2 2;
  let b = Dna.Bitstream.Writer.to_bytes w in
  let r = Dna.Bitstream.Reader.create b in
  Alcotest.(check int) "field 1" 5 (Dna.Bitstream.Reader.read r ~width:3);
  Alcotest.(check int) "field 2" 1027 (Dna.Bitstream.Reader.read r ~width:11);
  Alcotest.(check int) "field 3" 2 (Dna.Bitstream.Reader.read r ~width:2)

let test_bitstream_writer_rejects_wide_value () =
  let w = Dna.Bitstream.Writer.create () in
  Alcotest.check_raises "value too wide"
    (Invalid_argument "Bitstream.Writer.add: value too wide") (fun () ->
      Dna.Bitstream.Writer.add w ~width:3 9)

(* ---------- Randomizer ---------- *)

let test_randomizer_involution () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = Dna.Rng.int r 200 in
    let b = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let scrambled = Dna.Randomizer.scramble ~seed:99 b in
    Alcotest.(check bytes) "unscramble inverts" b (Dna.Randomizer.unscramble ~seed:99 scrambled)
  done

let test_randomizer_changes_data () =
  let b = Bytes.make 100 '\000' in
  let s = Dna.Randomizer.scramble ~seed:1 b in
  Alcotest.(check bool) "scrambled differs" false (Bytes.equal b s);
  let s2 = Dna.Randomizer.scramble ~seed:2 b in
  Alcotest.(check bool) "seed matters" false (Bytes.equal s s2)

let test_randomizer_breaks_homopolymers () =
  (* The whole point of unconstrained coding: an all-zero payload should
     come out without long homopolymers. *)
  let b = Bytes.make 256 '\000' in
  let s = Dna.Bitstream.strand_of_bytes (Dna.Randomizer.scramble ~seed:42 b) in
  Alcotest.(check bool) "homopolymer bounded" true (Dna.Strand.max_homopolymer s <= 10)

(* ---------- Distance ---------- *)

let test_levenshtein_known () =
  let d a b = Dna.Distance.levenshtein (Dna.Strand.of_string a) (Dna.Strand.of_string b) in
  Alcotest.(check int) "identical" 0 (d "ACGT" "ACGT");
  Alcotest.(check int) "one sub" 1 (d "ACGT" "AGGT");
  Alcotest.(check int) "one del" 1 (d "ACGT" "AGT");
  Alcotest.(check int) "one ins" 1 (d "ACGT" "ACCGT");
  Alcotest.(check int) "empty vs s" 4 (d "" "ACGT");
  Alcotest.(check int) "disjoint" 4 (d "AAAA" "CCCC")

let test_hamming () =
  let d a b = Dna.Distance.hamming (Dna.Strand.of_string a) (Dna.Strand.of_string b) in
  Alcotest.(check int) "identical" 0 (d "ACGT" "ACGT");
  Alcotest.(check int) "two diffs" 2 (d "ACGT" "TCGA");
  Alcotest.check_raises "unequal lengths"
    (Invalid_argument "Distance.hamming: unequal lengths") (fun () ->
      ignore (d "ACG" "ACGT"))

let test_levenshtein_leq_agrees () =
  let r = rng () in
  for _ = 1 to 200 do
    let a = Dna.Strand.random r (10 + Dna.Rng.int r 40) in
    let b = Dna.Strand.random r (10 + Dna.Rng.int r 40) in
    let d = Dna.Distance.levenshtein a b in
    (match Dna.Distance.levenshtein_leq ~bound:d a b with
    | Some d' -> Alcotest.(check int) "exact at bound" d d'
    | None -> Alcotest.fail "leq missed distance at exact bound");
    Alcotest.(check (option int)) "below bound rejects" None
      (Dna.Distance.levenshtein_leq ~bound:(d - 1) a b)
  done

let test_levenshtein_banded_exact_within_band () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r 40 in
    (* small perturbation: stays within band 10 *)
    let b =
      Dna.Strand.of_codes
        (Array.map (fun c -> if Dna.Rng.float r < 0.05 then Dna.Rng.int r 4 else c)
           (Dna.Strand.to_codes a))
    in
    let exact = Dna.Distance.levenshtein a b in
    if exact <= 10 then
      Alcotest.(check int) "banded matches exact" exact (Dna.Distance.levenshtein_banded ~band:10 a b)
  done

let test_l1 () =
  Alcotest.(check int) "l1" 6 (Dna.Distance.l1 [| 1; 2; 3 |] [| 3; 0; 1 |])

(* ---------- Alignment ---------- *)

let test_alignment_score_equals_levenshtein () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r (5 + Dna.Rng.int r 40) in
    let b = Dna.Strand.random r (5 + Dna.Rng.int r 40) in
    let al = Dna.Alignment.align a b in
    Alcotest.(check int) "score = edit distance" (Dna.Distance.levenshtein a b) al.Dna.Alignment.score
  done

let test_alignment_script_applies () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r (5 + Dna.Rng.int r 30) in
    let b = Dna.Strand.random r (5 + Dna.Rng.int r 30) in
    let al = Dna.Alignment.align a b in
    Alcotest.check strand "apply_script recovers b" b
      (Dna.Alignment.apply_script al.Dna.Alignment.script)
  done

let test_alignment_padded_same_length () =
  let a = Dna.Strand.of_string "ACGTAC" and b = Dna.Strand.of_string "AGTACC" in
  let al = Dna.Alignment.align a b in
  let pa, pb = Dna.Alignment.padded al in
  Alcotest.(check int) "padded equal lengths" (String.length pa) (String.length pb)

let test_alignment_counts () =
  let a = Dna.Strand.of_string "ACGT" and b = Dna.Strand.of_string "ACGT" in
  let m, s, d, i = Dna.Alignment.counts (Dna.Alignment.align a b) in
  Alcotest.(check (list int)) "all matches" [ 4; 0; 0; 0 ] [ m; s; d; i ]

(* ---------- POA ---------- *)

let test_poa_single_read () =
  let g = Dna.Poa.create () in
  let s = Dna.Strand.of_string "ACGTACGT" in
  Dna.Poa.add g s;
  Alcotest.check strand "consensus of one read" s (Dna.Poa.consensus g)

let test_poa_identical_reads () =
  let g = Dna.Poa.create () in
  let s = Dna.Strand.of_string "ACGTTGCA" in
  for _ = 1 to 5 do
    Dna.Poa.add g s
  done;
  Alcotest.check strand "consensus of identical reads" s (Dna.Poa.consensus g);
  Alcotest.(check int) "no extra nodes" (Dna.Strand.length s) (Dna.Poa.node_count g)

let test_poa_majority_substitution () =
  let g = Dna.Poa.create () in
  List.iter
    (fun s -> Dna.Poa.add g (Dna.Strand.of_string s))
    [ "ACGTACGT"; "ACGTACGT"; "ACCTACGT" ];
  Alcotest.check strand "substitution outvoted" (Dna.Strand.of_string "ACGTACGT")
    (Dna.Poa.consensus g)

let test_poa_column_consensus_noisy () =
  let r = rng () in
  let clean = Dna.Strand.random r 40 in
  let mutate s =
    Dna.Strand.of_codes
      (Array.map (fun c -> if Dna.Rng.float r < 0.05 then Dna.Rng.int r 4 else c)
         (Dna.Strand.to_codes s))
  in
  let g = Dna.Poa.create () in
  for _ = 1 to 9 do
    Dna.Poa.add g (mutate clean)
  done;
  let codes, support = Dna.Poa.consensus_columns ~n_reads:9 g in
  Alcotest.check strand "columns recover clean" clean (Dna.Strand.of_codes codes);
  Alcotest.(check int) "one support per column" (Array.length codes) (Array.length support)

(* ---------- Fasta / Fastq ---------- *)

let test_fasta_roundtrip () =
  let records =
    [
      { Dna.Fasta.id = "a"; seq = Dna.Strand.of_string "ACGT" };
      { Dna.Fasta.id = "b longer name"; seq = Dna.Strand.of_string "GGGG" };
    ]
  in
  let parsed, errors = Dna.Fasta.parse_string (Dna.Fasta.to_string records) in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "two records" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Dna.Fasta.id b.Dna.Fasta.id;
      Alcotest.check strand "seq" a.Dna.Fasta.seq b.Dna.Fasta.seq)
    records parsed

let test_fasta_multiline_and_errors () =
  let text = ">ok\nACGT\nACGT\n>bad\nACXT\n>also_ok\nTTTT\n" in
  let parsed, errors = Dna.Fasta.parse_string text in
  Alcotest.(check int) "two good records" 2 (List.length parsed);
  Alcotest.(check int) "one error" 1 (List.length errors);
  Alcotest.(check string) "wrapped seq" "ACGTACGT"
    (Dna.Strand.to_string (List.hd parsed).Dna.Fasta.seq)

let test_fastq_roundtrip () =
  let records =
    [
      { Dna.Fastq.id = "r1"; seq = Dna.Strand.of_string "ACGT"; qual = [| 30; 30; 20; 10 |] };
      { Dna.Fastq.id = "r2"; seq = Dna.Strand.of_string "TT"; qual = [| 5; 40 |] };
    ]
  in
  let parsed, errors = Dna.Fastq.parse_string (Dna.Fastq.to_string records) in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "two records" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Dna.Fastq.id b.Dna.Fastq.id;
      Alcotest.check strand "seq" a.Dna.Fastq.seq b.Dna.Fastq.seq;
      Alcotest.(check (array int)) "qual" a.Dna.Fastq.qual b.Dna.Fastq.qual)
    records parsed

let test_fastq_malformed () =
  let text = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIII\n@r3\nAC\n+\nII\n" in
  let parsed, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) "two good" 2 (List.length parsed);
  Alcotest.(check int) "one bad (quality length)" 1 (List.length errors)

let test_fastq_rejects_negative_quality () =
  (* A quality character below '!' would decode to a negative Phred
     score; the record must be reported, not silently parsed. *)
  let text = "@bad\nACGT\n+\nII I\n@good\nACGT\n+\nIIII\n" in
  let parsed, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) "good record kept" 1 (List.length parsed);
  Alcotest.(check int) "bad record reported" 1 (List.length errors);
  List.iter
    (fun r ->
      Array.iter
        (fun q -> Alcotest.(check bool) "no negative phred" true (q >= 0))
        r.Dna.Fastq.qual)
    parsed;
  Alcotest.(check bool) "opt variant rejects" true (Dna.Fastq.qual_of_string_opt "II I" = None);
  Alcotest.check_raises "raising variant"
    (Invalid_argument "Fastq.qual_of_string: quality character below '!'") (fun () ->
      ignore (Dna.Fastq.qual_of_string "II I"))

let test_readers_close_on_parse_exit () =
  (* read_file must close its channel on every exit path; after reading,
     deleting the file and re-reading must fail with Sys_error (not hit
     a stale descriptor), and repeated reads must not exhaust fds. *)
  let path = Filename.temp_file "dnastore_test" ".fastq" in
  let oc = open_out path in
  output_string oc "@r1\nACGT\n+\nIIII\n";
  close_out oc;
  for _ = 1 to 256 do
    let records, errors = Dna.Fastq.read_file path in
    Alcotest.(check int) "record parsed" 1 (List.length records);
    Alcotest.(check int) "no errors" 0 (List.length errors)
  done;
  let fasta_path = Filename.temp_file "dnastore_test" ".fasta" in
  let oc = open_out fasta_path in
  output_string oc ">r1\nACGT\n";
  close_out oc;
  for _ = 1 to 256 do
    let records, _ = Dna.Fasta.read_file fasta_path in
    Alcotest.(check int) "fasta record parsed" 1 (List.length records)
  done;
  Sys.remove path;
  Sys.remove fasta_path

(* ---------- QCheck properties ---------- *)

let arb_strand =
  QCheck.make
    ~print:(fun s -> Dna.Strand.to_string s)
    QCheck.Gen.(
      map
        (fun codes -> Dna.Strand.of_codes (Array.of_list codes))
        (list_size (int_range 0 60) (int_range 0 3)))

let prop_levenshtein_symmetric =
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:300 (QCheck.pair arb_strand arb_strand)
    (fun (a, b) -> Dna.Distance.levenshtein a b = Dna.Distance.levenshtein b a)

let prop_levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    (QCheck.triple arb_strand arb_strand arb_strand) (fun (a, b, c) ->
      Dna.Distance.levenshtein a c
      <= Dna.Distance.levenshtein a b + Dna.Distance.levenshtein b c)

let prop_levenshtein_identity =
  QCheck.Test.make ~name:"levenshtein identity" ~count:100 arb_strand (fun a ->
      Dna.Distance.levenshtein a a = 0)

let prop_revcomp_involution =
  QCheck.Test.make ~name:"reverse complement involutive" ~count:200 arb_strand (fun s ->
      Dna.Strand.equal s (Dna.Strand.reverse_complement (Dna.Strand.reverse_complement s)))

let prop_bytes_strand_roundtrip =
  QCheck.Test.make ~name:"bytes->strand->bytes" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound 255))
    (fun l ->
      let b = Bytes.of_string (String.init (List.length l) (fun i -> Char.chr (List.nth l i))) in
      Bytes.equal b (Dna.Bitstream.bytes_of_strand (Dna.Bitstream.strand_of_bytes b)))

let prop_scramble_involution =
  QCheck.Test.make ~name:"scramble involutive" ~count:200
    QCheck.(pair small_int (list (int_bound 255)))
    (fun (seed, l) ->
      let b = Bytes.of_string (String.init (List.length l) (fun i -> Char.chr (List.nth l i))) in
      Bytes.equal b (Dna.Randomizer.unscramble ~seed (Dna.Randomizer.scramble ~seed b)))

let prop_alignment_score =
  QCheck.Test.make ~name:"alignment score = levenshtein" ~count:200
    (QCheck.pair arb_strand arb_strand) (fun (a, b) ->
      (Dna.Alignment.align a b).Dna.Alignment.score = Dna.Distance.levenshtein a b)

let () =
  Alcotest.run "dna"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejection bounds" `Quick test_rng_int_rejection_bounds;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers_residues;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "geometric support" `Quick test_rng_geometric_support;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_indices_distinct;
        ] );
      ( "nucleotide",
        [
          Alcotest.test_case "roundtrip" `Quick test_nucleotide_roundtrip;
          Alcotest.test_case "complement involutive" `Quick test_nucleotide_complement_involutive;
          Alcotest.test_case "random other" `Quick test_nucleotide_random_other;
          Alcotest.test_case "invalid char" `Quick test_nucleotide_invalid_char;
        ] );
      ( "strand",
        [
          Alcotest.test_case "string roundtrip" `Quick test_strand_of_string_roundtrip;
          Alcotest.test_case "invalid rejected" `Quick test_strand_of_string_invalid;
          Alcotest.test_case "reverse complement" `Quick test_strand_reverse_complement;
          Alcotest.test_case "gc content" `Quick test_strand_gc_content;
          Alcotest.test_case "max homopolymer" `Quick test_strand_max_homopolymer;
          Alcotest.test_case "find" `Quick test_strand_find;
          Alcotest.test_case "codes roundtrip" `Quick test_strand_codes;
          Alcotest.test_case "sub/concat" `Quick test_strand_sub_concat;
          Alcotest.test_case "count" `Quick test_strand_count;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "bytes roundtrip" `Quick test_bitstream_bytes_roundtrip;
          Alcotest.test_case "writer/reader fields" `Quick test_bitstream_writer_reader;
          Alcotest.test_case "rejects wide values" `Quick test_bitstream_writer_rejects_wide_value;
        ] );
      ( "randomizer",
        [
          Alcotest.test_case "involution" `Quick test_randomizer_involution;
          Alcotest.test_case "changes data" `Quick test_randomizer_changes_data;
          Alcotest.test_case "breaks homopolymers" `Quick test_randomizer_breaks_homopolymers;
        ] );
      ( "distance",
        [
          Alcotest.test_case "levenshtein known" `Quick test_levenshtein_known;
          Alcotest.test_case "hamming" `Quick test_hamming;
          Alcotest.test_case "leq agrees" `Quick test_levenshtein_leq_agrees;
          Alcotest.test_case "banded exact in band" `Quick test_levenshtein_banded_exact_within_band;
          Alcotest.test_case "l1" `Quick test_l1;
        ] );
      ( "alignment",
        [
          Alcotest.test_case "score = levenshtein" `Quick test_alignment_score_equals_levenshtein;
          Alcotest.test_case "script applies" `Quick test_alignment_script_applies;
          Alcotest.test_case "padded lengths" `Quick test_alignment_padded_same_length;
          Alcotest.test_case "counts" `Quick test_alignment_counts;
        ] );
      ( "poa",
        [
          Alcotest.test_case "single read" `Quick test_poa_single_read;
          Alcotest.test_case "identical reads" `Quick test_poa_identical_reads;
          Alcotest.test_case "majority substitution" `Quick test_poa_majority_substitution;
          Alcotest.test_case "column consensus noisy" `Quick test_poa_column_consensus_noisy;
        ] );
      ( "fasta",
        [
          Alcotest.test_case "roundtrip" `Quick test_fasta_roundtrip;
          Alcotest.test_case "multiline + errors" `Quick test_fasta_multiline_and_errors;
        ] );
      ( "fastq",
        [
          Alcotest.test_case "roundtrip" `Quick test_fastq_roundtrip;
          Alcotest.test_case "malformed" `Quick test_fastq_malformed;
          Alcotest.test_case "negative quality rejected" `Quick test_fastq_rejects_negative_quality;
          Alcotest.test_case "readers close channels" `Quick test_readers_close_on_parse_exit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_levenshtein_symmetric;
            prop_levenshtein_triangle;
            prop_levenshtein_identity;
            prop_revcomp_involution;
            prop_bytes_strand_roundtrip;
            prop_scramble_involution;
            prop_alignment_score;
          ] );
    ]
