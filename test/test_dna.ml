(* Tests for the dna substrate library: RNG, nucleotides, strands,
   bitstream packing, randomizer, distances, alignment, POA, FASTA/FASTQ. *)

let rng () = Dna.Rng.create 12345

let strand = Alcotest.testable Dna.Strand.pp Dna.Strand.equal

(* ---------- Rng ---------- *)

let test_rng_deterministic () =
  let a = Dna.Rng.create 7 and b = Dna.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Dna.Rng.int a 1000) (Dna.Rng.int b 1000)
  done

let test_rng_split_independent () =
  let a = Dna.Rng.create 7 in
  let b = Dna.Rng.split a in
  let xs = List.init 50 (fun _ -> Dna.Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Dna.Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_int_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Dna.Rng.int r 17 in
    Alcotest.(check bool) "in [0,17)" true (v >= 0 && v < 17)
  done

let test_rng_int_rejection_bounds () =
  (* Rejection sampling must stay in range (and terminate) across small,
     large and power-of-two-adjacent bounds, including max_int. *)
  let r = rng () in
  List.iter
    (fun bound ->
      for _ = 1 to 500 do
        let v = Dna.Rng.int r bound in
        Alcotest.(check bool)
          (Printf.sprintf "in [0,%d)" bound)
          true
          (v >= 0 && v < bound)
      done)
    [ 1; 2; 3; 17; (1 lsl 40) + 1; max_int ]

let test_rng_int_covers_residues () =
  (* With an unbiased draw every residue of a small bound appears
     quickly; a stuck or truncated generator would fail this. *)
  let r = rng () in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Dna.Rng.int r 7) <- true
  done;
  Alcotest.(check (array bool)) "all residues hit" (Array.make 7 true) seen

let test_rng_float_bounds () =
  let r = rng () in
  for _ = 1 to 1000 do
    let v = Dna.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_poisson_mean () =
  let r = rng () in
  let n = 5000 in
  let total = ref 0 in
  for _ = 1 to n do
    total := !total + Dna.Rng.poisson r 10.0
  done;
  let mean = float_of_int !total /. float_of_int n in
  Alcotest.(check bool) "mean near 10" true (mean > 9.5 && mean < 10.5)

let test_rng_geometric_support () =
  let r = rng () in
  for _ = 1 to 1000 do
    Alcotest.(check bool) "at least 1" true (Dna.Rng.geometric r 0.4 >= 1)
  done;
  Alcotest.(check int) "p=1 is always 1" 1 (Dna.Rng.geometric r 1.0)

let test_rng_shuffle_permutation () =
  let r = rng () in
  let a = Array.init 100 (fun i -> i) in
  Dna.Rng.shuffle_in_place r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_rng_sample_indices_distinct () =
  let r = rng () in
  let s = Dna.Rng.sample_indices r ~n:50 ~k:20 in
  Alcotest.(check int) "20 samples" 20 (Array.length s);
  let distinct = List.sort_uniq compare (Array.to_list s) in
  Alcotest.(check int) "all distinct" 20 (List.length distinct);
  Array.iter (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 50)) s

(* ---------- Nucleotide ---------- *)

let test_nucleotide_roundtrip () =
  Array.iter
    (fun b ->
      Alcotest.(check char) "char roundtrip" (Dna.Nucleotide.to_char b)
        (Dna.Nucleotide.to_char (Dna.Nucleotide.of_char (Dna.Nucleotide.to_char b)));
      Alcotest.(check int) "code roundtrip" (Dna.Nucleotide.to_code b)
        (Dna.Nucleotide.to_code (Dna.Nucleotide.of_code (Dna.Nucleotide.to_code b))))
    Dna.Nucleotide.all

let test_nucleotide_complement_involutive () =
  Array.iter
    (fun b ->
      Alcotest.(check bool) "complement twice" true
        (Dna.Nucleotide.equal b Dna.Nucleotide.(complement (complement b))))
    Dna.Nucleotide.all

let test_nucleotide_random_other () =
  let r = rng () in
  for _ = 1 to 200 do
    let b = Dna.Nucleotide.random r in
    let o = Dna.Nucleotide.random_other r b in
    Alcotest.(check bool) "differs" false (Dna.Nucleotide.equal b o)
  done

let test_nucleotide_invalid_char () =
  Alcotest.check_raises "of_char 'N'" (Invalid_argument "Nucleotide.of_char: 'N'") (fun () ->
      ignore (Dna.Nucleotide.of_char 'N'))

(* ---------- Strand ---------- *)

let test_strand_of_string_roundtrip () =
  let s = "ACGTACGTTTGGCA" in
  Alcotest.(check string) "roundtrip" s (Dna.Strand.to_string (Dna.Strand.of_string s))

let test_strand_of_string_invalid () =
  Alcotest.(check bool) "invalid base rejected" true
    (Dna.Strand.of_string_opt "ACGX" = None)

let test_strand_reverse_complement () =
  let s = Dna.Strand.of_string "AACGT" in
  Alcotest.(check string) "revcomp" "ACGTT" (Dna.Strand.to_string (Dna.Strand.reverse_complement s));
  (* involution *)
  let r = rng () in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 30 in
    Alcotest.check strand "revcomp involutive" s
      (Dna.Strand.reverse_complement (Dna.Strand.reverse_complement s))
  done

let test_strand_gc_content () =
  Alcotest.(check (float 1e-9)) "all GC" 1.0 (Dna.Strand.gc_content (Dna.Strand.of_string "GGCC"));
  Alcotest.(check (float 1e-9)) "no GC" 0.0 (Dna.Strand.gc_content (Dna.Strand.of_string "ATAT"));
  Alcotest.(check (float 1e-9)) "half" 0.5 (Dna.Strand.gc_content (Dna.Strand.of_string "ACGT"));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Dna.Strand.gc_content Dna.Strand.empty)

let test_strand_max_homopolymer () =
  Alcotest.(check int) "empty" 0 (Dna.Strand.max_homopolymer Dna.Strand.empty);
  Alcotest.(check int) "single" 1 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "A"));
  Alcotest.(check int) "run of 4" 4 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "ACGGGGTA"));
  Alcotest.(check int) "run at end" 3 (Dna.Strand.max_homopolymer (Dna.Strand.of_string "ACGTTT"))

let test_strand_find () =
  let s = Dna.Strand.of_string "ACGTACGT" in
  Alcotest.(check (option int)) "find CGT" (Some 1)
    (Dna.Strand.find s ~pattern:(Dna.Strand.of_string "CGT"));
  Alcotest.(check (option int)) "find from 2" (Some 5)
    (Dna.Strand.find ~from:2 s ~pattern:(Dna.Strand.of_string "CGT"));
  Alcotest.(check (option int)) "absent" None
    (Dna.Strand.find s ~pattern:(Dna.Strand.of_string "TTT"));
  Alcotest.(check (option int)) "empty pattern" (Some 0)
    (Dna.Strand.find s ~pattern:Dna.Strand.empty)

let test_strand_codes () =
  let r = rng () in
  for _ = 1 to 50 do
    let s = Dna.Strand.random r 40 in
    Alcotest.check strand "codes roundtrip" s (Dna.Strand.of_codes (Dna.Strand.to_codes s))
  done

let test_strand_sub_concat () =
  let s = Dna.Strand.of_string "ACGTACGT" in
  let a = Dna.Strand.sub s ~pos:0 ~len:4 and b = Dna.Strand.sub s ~pos:4 ~len:4 in
  Alcotest.check strand "split+concat" s (Dna.Strand.concat [ a; b ]);
  Alcotest.check strand "append" s (Dna.Strand.append a b)

let test_strand_count () =
  let s = Dna.Strand.of_string "AACGTA" in
  Alcotest.(check int) "count A" 3 (Dna.Strand.count s Dna.Nucleotide.A);
  Alcotest.(check int) "count G" 1 (Dna.Strand.count s Dna.Nucleotide.G)

(* ---------- Bitstream ---------- *)

let test_bitstream_bytes_roundtrip () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = 1 + Dna.Rng.int r 64 in
    let b = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let s = Dna.Bitstream.strand_of_bytes b in
    Alcotest.(check int) "4 bases per byte" (4 * n) (Dna.Strand.length s);
    Alcotest.(check bytes) "roundtrip" b (Dna.Bitstream.bytes_of_strand s)
  done

let test_bitstream_writer_reader () =
  let w = Dna.Bitstream.Writer.create () in
  Dna.Bitstream.Writer.add w ~width:3 5;
  Dna.Bitstream.Writer.add w ~width:11 1027;
  Dna.Bitstream.Writer.add w ~width:2 2;
  let b = Dna.Bitstream.Writer.to_bytes w in
  let r = Dna.Bitstream.Reader.create b in
  Alcotest.(check int) "field 1" 5 (Dna.Bitstream.Reader.read r ~width:3);
  Alcotest.(check int) "field 2" 1027 (Dna.Bitstream.Reader.read r ~width:11);
  Alcotest.(check int) "field 3" 2 (Dna.Bitstream.Reader.read r ~width:2)

let test_bitstream_writer_rejects_wide_value () =
  let w = Dna.Bitstream.Writer.create () in
  Alcotest.check_raises "value too wide"
    (Invalid_argument "Bitstream.Writer.add: value too wide") (fun () ->
      Dna.Bitstream.Writer.add w ~width:3 9)

(* ---------- Randomizer ---------- *)

let test_randomizer_involution () =
  let r = rng () in
  for _ = 1 to 50 do
    let n = Dna.Rng.int r 200 in
    let b = Bytes.init n (fun _ -> Char.chr (Dna.Rng.int r 256)) in
    let scrambled = Dna.Randomizer.scramble ~seed:99 b in
    Alcotest.(check bytes) "unscramble inverts" b (Dna.Randomizer.unscramble ~seed:99 scrambled)
  done

let test_randomizer_changes_data () =
  let b = Bytes.make 100 '\000' in
  let s = Dna.Randomizer.scramble ~seed:1 b in
  Alcotest.(check bool) "scrambled differs" false (Bytes.equal b s);
  let s2 = Dna.Randomizer.scramble ~seed:2 b in
  Alcotest.(check bool) "seed matters" false (Bytes.equal s s2)

let test_randomizer_breaks_homopolymers () =
  (* The whole point of unconstrained coding: an all-zero payload should
     come out without long homopolymers. *)
  let b = Bytes.make 256 '\000' in
  let s = Dna.Bitstream.strand_of_bytes (Dna.Randomizer.scramble ~seed:42 b) in
  Alcotest.(check bool) "homopolymer bounded" true (Dna.Strand.max_homopolymer s <= 10)

(* ---------- Distance ---------- *)

let test_levenshtein_known () =
  let d a b = Dna.Distance.levenshtein (Dna.Strand.of_string a) (Dna.Strand.of_string b) in
  Alcotest.(check int) "identical" 0 (d "ACGT" "ACGT");
  Alcotest.(check int) "one sub" 1 (d "ACGT" "AGGT");
  Alcotest.(check int) "one del" 1 (d "ACGT" "AGT");
  Alcotest.(check int) "one ins" 1 (d "ACGT" "ACCGT");
  Alcotest.(check int) "empty vs s" 4 (d "" "ACGT");
  Alcotest.(check int) "disjoint" 4 (d "AAAA" "CCCC")

let test_hamming () =
  let d a b = Dna.Distance.hamming (Dna.Strand.of_string a) (Dna.Strand.of_string b) in
  Alcotest.(check int) "identical" 0 (d "ACGT" "ACGT");
  Alcotest.(check int) "two diffs" 2 (d "ACGT" "TCGA");
  Alcotest.check_raises "unequal lengths"
    (Invalid_argument "Distance.hamming: unequal lengths") (fun () ->
      ignore (d "ACG" "ACGT"))

let test_levenshtein_leq_agrees () =
  let r = rng () in
  for _ = 1 to 200 do
    let a = Dna.Strand.random r (10 + Dna.Rng.int r 40) in
    let b = Dna.Strand.random r (10 + Dna.Rng.int r 40) in
    let d = Dna.Distance.levenshtein a b in
    (match Dna.Distance.levenshtein_leq ~bound:d a b with
    | Some d' -> Alcotest.(check int) "exact at bound" d d'
    | None -> Alcotest.fail "leq missed distance at exact bound");
    Alcotest.(check (option int)) "below bound rejects" None
      (Dna.Distance.levenshtein_leq ~bound:(d - 1) a b)
  done

let test_levenshtein_banded_exact_within_band () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r 40 in
    (* small perturbation: stays within band 10 *)
    let b =
      Dna.Strand.of_codes
        (Array.map (fun c -> if Dna.Rng.float r < 0.05 then Dna.Rng.int r 4 else c)
           (Dna.Strand.to_codes a))
    in
    let exact = Dna.Distance.levenshtein a b in
    if exact <= 10 then
      Alcotest.(check int) "banded matches exact" exact (Dna.Distance.levenshtein_banded ~band:10 a b)
  done

let test_l1 () =
  Alcotest.(check int) "l1" 6 (Dna.Distance.l1 [| 1; 2; 3 |] [| 3; 0; 1 |])

(* ---------- Alignment ---------- *)

let test_alignment_score_equals_levenshtein () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r (5 + Dna.Rng.int r 40) in
    let b = Dna.Strand.random r (5 + Dna.Rng.int r 40) in
    let al = Dna.Alignment.align a b in
    Alcotest.(check int) "score = edit distance" (Dna.Distance.levenshtein a b) al.Dna.Alignment.score
  done

let test_alignment_script_applies () =
  let r = rng () in
  for _ = 1 to 100 do
    let a = Dna.Strand.random r (5 + Dna.Rng.int r 30) in
    let b = Dna.Strand.random r (5 + Dna.Rng.int r 30) in
    let al = Dna.Alignment.align a b in
    Alcotest.check strand "apply_script recovers b" b
      (Dna.Alignment.apply_script al.Dna.Alignment.script)
  done

let test_alignment_padded_same_length () =
  let a = Dna.Strand.of_string "ACGTAC" and b = Dna.Strand.of_string "AGTACC" in
  let al = Dna.Alignment.align a b in
  let pa, pb = Dna.Alignment.padded al in
  Alcotest.(check int) "padded equal lengths" (String.length pa) (String.length pb)

let test_alignment_counts () =
  let a = Dna.Strand.of_string "ACGT" and b = Dna.Strand.of_string "ACGT" in
  let m, s, d, i = Dna.Alignment.counts (Dna.Alignment.align a b) in
  Alcotest.(check (list int)) "all matches" [ 4; 0; 0; 0 ] [ m; s; d; i ]

(* ---------- POA ---------- *)

let test_poa_single_read () =
  let g = Dna.Poa.create () in
  let s = Dna.Strand.of_string "ACGTACGT" in
  Dna.Poa.add g s;
  Alcotest.check strand "consensus of one read" s (Dna.Poa.consensus g)

let test_poa_identical_reads () =
  let g = Dna.Poa.create () in
  let s = Dna.Strand.of_string "ACGTTGCA" in
  for _ = 1 to 5 do
    Dna.Poa.add g s
  done;
  Alcotest.check strand "consensus of identical reads" s (Dna.Poa.consensus g);
  Alcotest.(check int) "no extra nodes" (Dna.Strand.length s) (Dna.Poa.node_count g)

let test_poa_majority_substitution () =
  let g = Dna.Poa.create () in
  List.iter
    (fun s -> Dna.Poa.add g (Dna.Strand.of_string s))
    [ "ACGTACGT"; "ACGTACGT"; "ACCTACGT" ];
  Alcotest.check strand "substitution outvoted" (Dna.Strand.of_string "ACGTACGT")
    (Dna.Poa.consensus g)

let test_poa_column_consensus_noisy () =
  let r = rng () in
  let clean = Dna.Strand.random r 40 in
  let mutate s =
    Dna.Strand.of_codes
      (Array.map (fun c -> if Dna.Rng.float r < 0.05 then Dna.Rng.int r 4 else c)
         (Dna.Strand.to_codes s))
  in
  let g = Dna.Poa.create () in
  for _ = 1 to 9 do
    Dna.Poa.add g (mutate clean)
  done;
  let codes, support = Dna.Poa.consensus_columns ~n_reads:9 g in
  Alcotest.check strand "columns recover clean" clean (Dna.Strand.of_codes codes);
  Alcotest.(check int) "one support per column" (Array.length codes) (Array.length support)

(* ---------- Fasta / Fastq ---------- *)

let test_fasta_roundtrip () =
  let records =
    [
      { Dna.Fasta.id = "a"; seq = Dna.Strand.of_string "ACGT" };
      { Dna.Fasta.id = "b longer name"; seq = Dna.Strand.of_string "GGGG" };
    ]
  in
  let parsed, errors = Dna.Fasta.parse_string (Dna.Fasta.to_string records) in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "two records" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Dna.Fasta.id b.Dna.Fasta.id;
      Alcotest.check strand "seq" a.Dna.Fasta.seq b.Dna.Fasta.seq)
    records parsed

let test_fasta_multiline_and_errors () =
  let text = ">ok\nACGT\nACGT\n>bad\nACXT\n>also_ok\nTTTT\n" in
  let parsed, errors = Dna.Fasta.parse_string text in
  Alcotest.(check int) "two good records" 2 (List.length parsed);
  Alcotest.(check int) "one error" 1 (List.length errors);
  Alcotest.(check string) "wrapped seq" "ACGTACGT"
    (Dna.Strand.to_string (List.hd parsed).Dna.Fasta.seq)

let test_fastq_roundtrip () =
  let records =
    [
      { Dna.Fastq.id = "r1"; seq = Dna.Strand.of_string "ACGT"; qual = [| 30; 30; 20; 10 |] };
      { Dna.Fastq.id = "r2"; seq = Dna.Strand.of_string "TT"; qual = [| 5; 40 |] };
    ]
  in
  let parsed, errors = Dna.Fastq.parse_string (Dna.Fastq.to_string records) in
  Alcotest.(check int) "no errors" 0 (List.length errors);
  Alcotest.(check int) "two records" 2 (List.length parsed);
  List.iter2
    (fun a b ->
      Alcotest.(check string) "id" a.Dna.Fastq.id b.Dna.Fastq.id;
      Alcotest.check strand "seq" a.Dna.Fastq.seq b.Dna.Fastq.seq;
      Alcotest.(check (array int)) "qual" a.Dna.Fastq.qual b.Dna.Fastq.qual)
    records parsed

let test_fastq_malformed () =
  let text = "@r1\nACGT\n+\nIIII\n@r2\nACGT\n+\nIII\n@r3\nAC\n+\nII\n" in
  let parsed, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) "two good" 2 (List.length parsed);
  Alcotest.(check int) "one bad (quality length)" 1 (List.length errors)

let test_fastq_rejects_negative_quality () =
  (* A quality character below '!' would decode to a negative Phred
     score; the record must be reported, not silently parsed. *)
  let text = "@bad\nACGT\n+\nII I\n@good\nACGT\n+\nIIII\n" in
  let parsed, errors = Dna.Fastq.parse_string text in
  Alcotest.(check int) "good record kept" 1 (List.length parsed);
  Alcotest.(check int) "bad record reported" 1 (List.length errors);
  List.iter
    (fun r ->
      Array.iter
        (fun q -> Alcotest.(check bool) "no negative phred" true (q >= 0))
        r.Dna.Fastq.qual)
    parsed;
  Alcotest.(check bool) "opt variant rejects" true (Dna.Fastq.qual_of_string_opt "II I" = None);
  Alcotest.check_raises "raising variant"
    (Invalid_argument "Fastq.qual_of_string: quality character below '!'") (fun () ->
      ignore (Dna.Fastq.qual_of_string "II I"))

let test_readers_close_on_parse_exit () =
  (* read_file must close its channel on every exit path; after reading,
     deleting the file and re-reading must fail with Sys_error (not hit
     a stale descriptor), and repeated reads must not exhaust fds. *)
  let path = Filename.temp_file "dnastore_test" ".fastq" in
  let oc = open_out path in
  output_string oc "@r1\nACGT\n+\nIIII\n";
  close_out oc;
  for _ = 1 to 256 do
    let records, errors = Dna.Fastq.read_file path in
    Alcotest.(check int) "record parsed" 1 (List.length records);
    Alcotest.(check int) "no errors" 0 (List.length errors)
  done;
  let fasta_path = Filename.temp_file "dnastore_test" ".fasta" in
  let oc = open_out fasta_path in
  output_string oc ">r1\nACGT\n";
  close_out oc;
  for _ = 1 to 256 do
    let records, _ = Dna.Fasta.read_file fasta_path in
    Alcotest.(check int) "fasta record parsed" 1 (List.length records)
  done;
  Sys.remove path;
  Sys.remove fasta_path

(* ---------- Strand_pool ---------- *)

let test_pool_builder_roundtrip () =
  let pool = Dna.Strand_pool.create () in
  String.iter (fun c -> Dna.Strand_pool.emit pool (Dna.Strand.code_of_char c)) "ACGT";
  Alcotest.(check int) "open length" 4 (Dna.Strand_pool.open_length pool);
  Alcotest.(check int) "first index" 0 (Dna.Strand_pool.commit pool);
  Alcotest.(check int) "second index" 1 (Dna.Strand_pool.add_string pool "GATTACA");
  Alcotest.check strand "read 0" (Dna.Strand.of_string "ACGT") (Dna.Strand_pool.get pool 0);
  Alcotest.check strand "read 1" (Dna.Strand.of_string "GATTACA")
    (Dna.Strand_pool.get pool 1);
  Alcotest.(check int) "length" 2 (Dna.Strand_pool.length pool);
  Alcotest.(check int) "total bases" 11 (Dna.Strand_pool.total_bases pool);
  Alcotest.(check int) "read_length" 7 (Dna.Strand_pool.read_length pool 1)

let test_pool_rollback_truncate_revcomp () =
  let pool = Dna.Strand_pool.create () in
  (* A rolled-back read leaves no trace: the next read must not inherit
     its bits (emit ORs into the buffer, so orphaned bits would show). *)
  String.iter (fun c -> Dna.Strand_pool.emit pool (Dna.Strand.code_of_char c)) "TTTTTTTT";
  Dna.Strand_pool.rollback pool;
  ignore (Dna.Strand_pool.add_string pool "AACA");
  Alcotest.check strand "rollback leaves no bits" (Dna.Strand.of_string "AACA")
    (Dna.Strand_pool.get pool 0);
  (* Truncation zeroes the cut tail for the same reason. *)
  String.iter (fun c -> Dna.Strand_pool.emit pool (Dna.Strand.code_of_char c)) "GGGGGG";
  Dna.Strand_pool.truncate_open pool 3;
  String.iter (fun c -> Dna.Strand_pool.emit pool (Dna.Strand.code_of_char c)) "AA";
  ignore (Dna.Strand_pool.commit pool);
  Alcotest.check strand "truncate then extend" (Dna.Strand.of_string "GGGAA")
    (Dna.Strand_pool.get pool 1);
  String.iter (fun c -> Dna.Strand_pool.emit pool (Dna.Strand.code_of_char c)) "ACCGTA";
  Dna.Strand_pool.revcomp_open pool;
  ignore (Dna.Strand_pool.commit pool);
  Alcotest.check strand "revcomp in place"
    (Dna.Strand.reverse_complement (Dna.Strand.of_string "ACCGTA"))
    (Dna.Strand_pool.get pool 2)

let test_pool_views_survive_growth () =
  let pool = Dna.Strand_pool.create ~capacity_bases:8 ~capacity_reads:1 () in
  ignore (Dna.Strand_pool.add_string pool "ACGTACGT");
  let early = Dna.Strand_pool.get pool 0 in
  (* Force several buffer growths; the early view keeps the old array
     alive and must still read its original bases. *)
  for _ = 1 to 64 do
    ignore (Dna.Strand_pool.add_string pool "GGGGCCCCAAAATTTT")
  done;
  Alcotest.check strand "early view intact" (Dna.Strand.of_string "ACGTACGT") early;
  Alcotest.check strand "re-minted view agrees" early (Dna.Strand_pool.get pool 0)

let test_pool_swap_permute () =
  let pool = Dna.Strand_pool.create () in
  let names = [| "AAAA"; "CCCC"; "GGGG"; "TTTT" |] in
  Array.iter (fun s -> ignore (Dna.Strand_pool.add_string pool s)) names;
  Dna.Strand_pool.swap pool 0 3;
  Alcotest.check strand "swap 0" (Dna.Strand.of_string "TTTT") (Dna.Strand_pool.get pool 0);
  Dna.Strand_pool.swap pool 0 3;
  (* permute: position i takes the read that was at perm.(i). *)
  Dna.Strand_pool.permute pool [| 3; 2; 1; 0 |];
  Array.iteri
    (fun i _ ->
      Alcotest.check strand
        (Printf.sprintf "permuted %d" i)
        (Dna.Strand.of_string names.(3 - i))
        (Dna.Strand_pool.get pool i))
    names;
  (* partial permute over a suffix *)
  Dna.Strand_pool.permute pool ~from:2 [| 1; 0 |];
  Alcotest.check strand "suffix permuted" (Dna.Strand.of_string "AAAA")
    (Dna.Strand_pool.get pool 2)

let test_pool_clear_reuse () =
  let pool = Dna.Strand_pool.create () in
  ignore (Dna.Strand_pool.add_string pool "TTTTTTTTTTTTTTTT");
  Dna.Strand_pool.clear pool;
  Alcotest.(check int) "empty after clear" 0 (Dna.Strand_pool.length pool);
  (* clear must zero the buffer or the OR-emit discipline would leak the
     old read's bits into the new one. *)
  ignore (Dna.Strand_pool.add_string pool "AACA");
  Alcotest.check strand "no stale bits" (Dna.Strand.of_string "AACA")
    (Dna.Strand_pool.get pool 0)

(* ---------- Streaming folds ---------- *)

let test_fastq_fold_matches_read_file () =
  let path = Filename.temp_file "dnastore_test" ".fastq" in
  let oc = open_out path in
  output_string oc "@r1\nACGT\n+\nIIII\n@bad\nACGT\n+\nIII\n@r2\nGATTACA\n+comment\nIIIIIII\n";
  close_out oc;
  let records, errors = Dna.Fastq.read_file path in
  let folded_rev, fold_errors =
    Dna.Fastq.fold_file path ~init:[] ~f:(fun acc r -> r :: acc)
  in
  let folded = List.rev folded_rev in
  Alcotest.(check int) "same record count" (List.length records) (List.length folded);
  List.iter2
    (fun (a : Dna.Fastq.record) (b : Dna.Fastq.record) ->
      Alcotest.(check string) "id" a.id b.id;
      Alcotest.check strand "seq" a.seq b.seq;
      Alcotest.(check (array int)) "qual" a.qual b.qual)
    records folded;
  Alcotest.(check (list (pair int string)))
    "same errors"
    (List.map (fun (e : Dna.Fastq.error) -> (e.line, e.message)) errors)
    (List.map (fun (e : Dna.Fastq.error) -> (e.line, e.message)) fold_errors);
  let n = ref 0 in
  Dna.Fastq.iter_file path ~f:(fun _ -> incr n);
  Alcotest.(check int) "iter_file count" (List.length records) !n;
  Sys.remove path

let test_fasta_fold_matches_read_file () =
  let path = Filename.temp_file "dnastore_test" ".fasta" in
  let oc = open_out path in
  output_string oc ">r1 desc\nACGT\nTTAA\n\n>bad\nACXT\n>r2\nGATTACA\n";
  close_out oc;
  let records, errors = Dna.Fasta.read_file path in
  let folded_rev, fold_errors =
    Dna.Fasta.fold_file path ~init:[] ~f:(fun acc r -> r :: acc)
  in
  let folded = List.rev folded_rev in
  Alcotest.(check int) "same record count" (List.length records) (List.length folded);
  List.iter2
    (fun (a : Dna.Fasta.record) (b : Dna.Fasta.record) ->
      Alcotest.(check string) "id" a.id b.id;
      Alcotest.check strand "seq" a.seq b.seq)
    records folded;
  Alcotest.(check (list (pair int string)))
    "same errors"
    (List.map (fun (e : Dna.Fasta.error) -> (e.line, e.message)) errors)
    (List.map (fun (e : Dna.Fasta.error) -> (e.line, e.message)) fold_errors);
  Sys.remove path

(* ---------- QCheck properties ---------- *)

let arb_strand =
  QCheck.make
    ~print:(fun s -> Dna.Strand.to_string s)
    QCheck.Gen.(
      map
        (fun codes -> Dna.Strand.of_codes (Array.of_list codes))
        (list_size (int_range 0 60) (int_range 0 3)))

let prop_levenshtein_symmetric =
  QCheck.Test.make ~name:"levenshtein symmetric" ~count:300 (QCheck.pair arb_strand arb_strand)
    (fun (a, b) -> Dna.Distance.levenshtein a b = Dna.Distance.levenshtein b a)

let prop_levenshtein_triangle =
  QCheck.Test.make ~name:"levenshtein triangle inequality" ~count:200
    (QCheck.triple arb_strand arb_strand arb_strand) (fun (a, b, c) ->
      Dna.Distance.levenshtein a c
      <= Dna.Distance.levenshtein a b + Dna.Distance.levenshtein b c)

let prop_levenshtein_identity =
  QCheck.Test.make ~name:"levenshtein identity" ~count:100 arb_strand (fun a ->
      Dna.Distance.levenshtein a a = 0)

let prop_revcomp_involution =
  QCheck.Test.make ~name:"reverse complement involutive" ~count:200 arb_strand (fun s ->
      Dna.Strand.equal s (Dna.Strand.reverse_complement (Dna.Strand.reverse_complement s)))

let prop_bytes_strand_roundtrip =
  QCheck.Test.make ~name:"bytes->strand->bytes" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (int_bound 255))
    (fun l ->
      let b = Bytes.of_string (String.init (List.length l) (fun i -> Char.chr (List.nth l i))) in
      Bytes.equal b (Dna.Bitstream.bytes_of_strand (Dna.Bitstream.strand_of_bytes b)))

let prop_scramble_involution =
  QCheck.Test.make ~name:"scramble involutive" ~count:200
    QCheck.(pair small_int (list (int_bound 255)))
    (fun (seed, l) ->
      let b = Bytes.of_string (String.init (List.length l) (fun i -> Char.chr (List.nth l i))) in
      Bytes.equal b (Dna.Randomizer.unscramble ~seed (Dna.Randomizer.scramble ~seed b)))

let prop_alignment_score =
  QCheck.Test.make ~name:"alignment score = levenshtein" ~count:200
    (QCheck.pair arb_strand arb_strand) (fun (a, b) ->
      (Dna.Alignment.align a b).Dna.Alignment.score = Dna.Distance.levenshtein a b)

(* ---------- Packed-representation properties ----------

   The packed strand must be observationally identical to the plain
   code-array semantics. Lengths are biased onto the word boundaries of
   both layouts: 2-bit packing (16 bases/word: 31/32/33) and the Myers
   masks (63 bits/word: 63/64/65). *)

let gen_codes =
  QCheck.Gen.(
    let boundary = oneofl [ 0; 1; 15; 16; 17; 31; 32; 33; 62; 63; 64; 65; 300 ] in
    let len = oneof [ int_range 0 300; boundary ] in
    map Array.of_list (list_size len (int_range 0 3)))

let arb_codes =
  QCheck.make
    ~print:(fun a ->
      Dna.Strand.to_string (Dna.Strand.of_codes a))
    gen_codes

let prop_packed_codes_roundtrip =
  QCheck.Test.make ~name:"packed of_codes/to_codes/get_code" ~count:300 arb_codes
    (fun codes ->
      let s = Dna.Strand.of_codes codes in
      Dna.Strand.to_codes s = codes
      && Array.for_all
           (fun i -> Dna.Strand.get_code s i = codes.(i))
           (Array.init (Array.length codes) Fun.id))

let prop_packed_sub =
  QCheck.Test.make ~name:"packed sub = code-array slice" ~count:300
    QCheck.(triple arb_codes small_nat small_nat)
    (fun (codes, p, l) ->
      let n = Array.length codes in
      let pos = if n = 0 then 0 else p mod (n + 1) in
      let len = if n - pos = 0 then 0 else l mod (n - pos + 1) in
      let s = Dna.Strand.of_codes codes in
      Dna.Strand.to_codes (Dna.Strand.sub s ~pos ~len) = Array.sub codes pos len)

let prop_packed_sub_of_sub =
  (* Slices of slices alias the same packed words at a composed offset. *)
  QCheck.Test.make ~name:"packed sub of sub" ~count:300
    QCheck.(quad arb_codes small_nat small_nat small_nat)
    (fun (codes, p, l, q) ->
      let n = Array.length codes in
      let pos = if n = 0 then 0 else p mod (n + 1) in
      let len = if n - pos = 0 then 0 else l mod (n - pos + 1) in
      let pos2 = if len = 0 then 0 else q mod (len + 1) in
      let len2 = len - pos2 in
      let s = Dna.Strand.of_codes codes in
      Dna.Strand.equal
        (Dna.Strand.sub (Dna.Strand.sub s ~pos ~len) ~pos:pos2 ~len:len2)
        (Dna.Strand.sub s ~pos:(pos + pos2) ~len:len2))

let prop_packed_rev_complement =
  QCheck.Test.make ~name:"packed rev/complement = code transforms" ~count:300 arb_codes
    (fun codes ->
      let n = Array.length codes in
      let s = Dna.Strand.of_codes codes in
      let rev_ref = Array.init n (fun i -> codes.(n - 1 - i)) in
      let comp_ref = Array.map (fun c -> c lxor 3) codes in
      let revcomp_ref = Array.init n (fun i -> codes.(n - 1 - i) lxor 3) in
      Dna.Strand.to_codes (Dna.Strand.rev s) = rev_ref
      && Dna.Strand.to_codes (Dna.Strand.complement s) = comp_ref
      && Dna.Strand.to_codes (Dna.Strand.reverse_complement s) = revcomp_ref)

let prop_packed_eq_masks =
  QCheck.Test.make ~name:"packed eq_masks bits" ~count:300 arb_codes (fun codes ->
      let s = Dna.Strand.of_codes codes in
      let n = Array.length codes in
      let mb = Dna.Strand.mask_bits in
      let words = (n + mb - 1) / mb in
      let masks = Dna.Strand.eq_masks s in
      Array.length masks = 4 * words
      && List.for_all
           (fun j ->
             List.for_all
               (fun c ->
                 let bit = (masks.((c * words) + (j / mb)) lsr (j mod mb)) land 1 in
                 bit = if codes.(j) = c then 1 else 0)
               [ 0; 1; 2; 3 ])
           (List.init n Fun.id))

let prop_packed_eq_masks_of_slice =
  (* Masks of an offset view must describe the view, not word 0 of the
     backing buffer. *)
  QCheck.Test.make ~name:"packed eq_masks of slice" ~count:300
    QCheck.(pair arb_codes small_nat)
    (fun (codes, p) ->
      let n = Array.length codes in
      let pos = if n = 0 then 0 else p mod (n + 1) in
      let view = Dna.Strand.sub (Dna.Strand.of_codes codes) ~pos ~len:(n - pos) in
      let fresh = Dna.Strand.of_codes (Array.sub codes pos (n - pos)) in
      Dna.Strand.eq_masks view = Dna.Strand.eq_masks fresh)

let prop_packed_concat_append =
  QCheck.Test.make ~name:"packed concat/append = array concat" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 0 5) arb_codes) arb_codes)
    (fun (pieces, extra) ->
      let strands = List.map Dna.Strand.of_codes pieces in
      let cat_ref = Array.concat pieces in
      let s = Dna.Strand.concat strands in
      Dna.Strand.to_codes s = cat_ref
      && Dna.Strand.to_codes (Dna.Strand.append s (Dna.Strand.of_codes extra))
         = Array.append cat_ref extra)

let prop_packed_equal_hash_on_views =
  (* A strand reached through an arbitrary word offset (slice of a
     concat) is indistinguishable from a freshly packed one: equal,
     compare 0, same hash, same find. *)
  QCheck.Test.make ~name:"packed equal/hash offset-independent" ~count:300
    QCheck.(pair arb_codes arb_codes)
    (fun (prefix, codes) ->
      let s = Dna.Strand.of_codes codes in
      let view =
        Dna.Strand.sub
          (Dna.Strand.concat [ Dna.Strand.of_codes prefix; s ])
          ~pos:(Array.length prefix) ~len:(Array.length codes)
      in
      Dna.Strand.equal s view
      && Dna.Strand.compare s view = 0
      && Dna.Strand.hash s = Dna.Strand.hash view)

let prop_pool_roundtrip =
  QCheck.Test.make ~name:"pool add/get roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 20) arb_codes)
    (fun pieces ->
      let pool = Dna.Strand_pool.create ~capacity_bases:4 ~capacity_reads:1 () in
      List.iter (fun codes -> ignore (Dna.Strand_pool.add_codes pool codes)) pieces;
      List.for_all
        (fun (i, codes) -> Dna.Strand.to_codes (Dna.Strand_pool.get pool i) = codes)
        (List.mapi (fun i c -> (i, c)) pieces))

let () =
  Alcotest.run "dna"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejection bounds" `Quick test_rng_int_rejection_bounds;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers_residues;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "geometric support" `Quick test_rng_geometric_support;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample distinct" `Quick test_rng_sample_indices_distinct;
        ] );
      ( "nucleotide",
        [
          Alcotest.test_case "roundtrip" `Quick test_nucleotide_roundtrip;
          Alcotest.test_case "complement involutive" `Quick test_nucleotide_complement_involutive;
          Alcotest.test_case "random other" `Quick test_nucleotide_random_other;
          Alcotest.test_case "invalid char" `Quick test_nucleotide_invalid_char;
        ] );
      ( "strand",
        [
          Alcotest.test_case "string roundtrip" `Quick test_strand_of_string_roundtrip;
          Alcotest.test_case "invalid rejected" `Quick test_strand_of_string_invalid;
          Alcotest.test_case "reverse complement" `Quick test_strand_reverse_complement;
          Alcotest.test_case "gc content" `Quick test_strand_gc_content;
          Alcotest.test_case "max homopolymer" `Quick test_strand_max_homopolymer;
          Alcotest.test_case "find" `Quick test_strand_find;
          Alcotest.test_case "codes roundtrip" `Quick test_strand_codes;
          Alcotest.test_case "sub/concat" `Quick test_strand_sub_concat;
          Alcotest.test_case "count" `Quick test_strand_count;
        ] );
      ( "bitstream",
        [
          Alcotest.test_case "bytes roundtrip" `Quick test_bitstream_bytes_roundtrip;
          Alcotest.test_case "writer/reader fields" `Quick test_bitstream_writer_reader;
          Alcotest.test_case "rejects wide values" `Quick test_bitstream_writer_rejects_wide_value;
        ] );
      ( "randomizer",
        [
          Alcotest.test_case "involution" `Quick test_randomizer_involution;
          Alcotest.test_case "changes data" `Quick test_randomizer_changes_data;
          Alcotest.test_case "breaks homopolymers" `Quick test_randomizer_breaks_homopolymers;
        ] );
      ( "distance",
        [
          Alcotest.test_case "levenshtein known" `Quick test_levenshtein_known;
          Alcotest.test_case "hamming" `Quick test_hamming;
          Alcotest.test_case "leq agrees" `Quick test_levenshtein_leq_agrees;
          Alcotest.test_case "banded exact in band" `Quick test_levenshtein_banded_exact_within_band;
          Alcotest.test_case "l1" `Quick test_l1;
        ] );
      ( "alignment",
        [
          Alcotest.test_case "score = levenshtein" `Quick test_alignment_score_equals_levenshtein;
          Alcotest.test_case "script applies" `Quick test_alignment_script_applies;
          Alcotest.test_case "padded lengths" `Quick test_alignment_padded_same_length;
          Alcotest.test_case "counts" `Quick test_alignment_counts;
        ] );
      ( "poa",
        [
          Alcotest.test_case "single read" `Quick test_poa_single_read;
          Alcotest.test_case "identical reads" `Quick test_poa_identical_reads;
          Alcotest.test_case "majority substitution" `Quick test_poa_majority_substitution;
          Alcotest.test_case "column consensus noisy" `Quick test_poa_column_consensus_noisy;
        ] );
      ( "fasta",
        [
          Alcotest.test_case "roundtrip" `Quick test_fasta_roundtrip;
          Alcotest.test_case "multiline + errors" `Quick test_fasta_multiline_and_errors;
        ] );
      ( "fastq",
        [
          Alcotest.test_case "roundtrip" `Quick test_fastq_roundtrip;
          Alcotest.test_case "malformed" `Quick test_fastq_malformed;
          Alcotest.test_case "negative quality rejected" `Quick test_fastq_rejects_negative_quality;
          Alcotest.test_case "readers close channels" `Quick test_readers_close_on_parse_exit;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_levenshtein_symmetric;
            prop_levenshtein_triangle;
            prop_levenshtein_identity;
            prop_revcomp_involution;
            prop_bytes_strand_roundtrip;
            prop_scramble_involution;
            prop_alignment_score;
            prop_packed_codes_roundtrip;
            prop_packed_sub;
            prop_packed_sub_of_sub;
            prop_packed_rev_complement;
            prop_packed_eq_masks;
            prop_packed_eq_masks_of_slice;
            prop_packed_concat_append;
            prop_packed_equal_hash_on_views;
            prop_pool_roundtrip;
          ] );
      ( "strand_pool",
        [
          Alcotest.test_case "builder roundtrip" `Quick test_pool_builder_roundtrip;
          Alcotest.test_case "rollback/truncate/revcomp" `Quick
            test_pool_rollback_truncate_revcomp;
          Alcotest.test_case "views survive growth" `Quick test_pool_views_survive_growth;
          Alcotest.test_case "swap/permute" `Quick test_pool_swap_permute;
          Alcotest.test_case "clear reuse" `Quick test_pool_clear_reuse;
        ] );
      ( "streaming",
        [
          Alcotest.test_case "fastq fold = read_file" `Quick test_fastq_fold_matches_read_file;
          Alcotest.test_case "fasta fold = read_file" `Quick test_fasta_fold_matches_read_file;
        ] );
    ]
