(* Quality-aware storage with DNAMapper (Section IV-C).

   Run with: dune exec examples/image_storage.exe

   A synthetic grayscale image is split into two quality tiers: the high
   nibbles of the pixels (most of the visual content) and the low
   nibbles (fine detail, corruption-tolerant). Double-sided BMA makes
   the middle matrix rows the least reliable, so DNAMapper places the
   high tier on reliable rows and the low tier on the unreliable middle.
   Under a harsh channel with thin error correction, the same wetlab run
   corrupts far fewer high-tier bytes with the mapping than without. *)

let image_side = 48

(* A gradient with a bright diagonal stripe: any byte corruption of the
   high nibble is visually obvious, low-nibble noise is not. *)
let synthetic_image () =
  Bytes.init (image_side * image_side) (fun i ->
      let x = i mod image_side and y = i / image_side in
      let base = (x * 255 / image_side / 2) + (y * 255 / image_side / 2) in
      let stripe = if abs (x - y) < 3 then 64 else 0 in
      Char.chr (min 255 (base + stripe)))

let split_tiers img =
  let n = Bytes.length img in
  let msb = Bytes.init n (fun i -> Char.chr (Char.code (Bytes.get img i) land 0xf0)) in
  let lsb = Bytes.init n (fun i -> Char.chr (Char.code (Bytes.get img i) land 0x0f)) in
  (msb, lsb)

let count_errors original decoded =
  let n = min (Bytes.length original) (Bytes.length decoded) in
  let e = ref (abs (Bytes.length original - Bytes.length decoded)) in
  for i = 0 to n - 1 do
    if Bytes.get original i <> Bytes.get decoded i then incr e
  done;
  !e

(* Thin parity so some codewords genuinely fail; the question is *which
   rows* the failures land on. Under double-sided BMA they concentrate
   on the middle rows. *)
let params = { Codec.Params.default with Codec.Params.rs_parity = 2 }

let run_trial rng ~mapped img =
  let msb, lsb = split_tiers img in
  let rows = Codec.Params.rows params in
  let reliability =
    if mapped then Codec.Dnamapper.dbma_profile ~rows
    else Array.make rows 0.0 (* uniform: arrangement degenerates to concat *)
  in
  (* The header spans whole columns, so tier data starts row-aligned. *)
  let arranged, plan = Codec.Dnamapper.arrange ~offset:0 ~rows ~reliability [ msb; lsb ] in
  let encoded = Codec.File_codec.encode ~params arranged in
  let channel =
    Simulator.Wetlab_channel.create
      ~params:{ Simulator.Wetlab_channel.default_params with base_error = 0.05 }
      ()
  in
  let sequencing = Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 10) in
  let reads = Simulator.Sequencer.sequence sequencing channel rng encoded.Codec.File_codec.strands in
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  let clusters = Dnastore.Pipeline.cluster_default () rng read_strands in
  let target_len = Codec.Params.strand_nt params in
  let consensus =
    List.filter_map
      (fun c -> if c = [] then None else Some (Reconstruction.Bma.reconstruct_double ~target_len (Array.of_list c)))
      clusters
  in
  match Codec.File_codec.decode ~params ~n_units:encoded.Codec.File_codec.n_units consensus with
  | Error e -> failwith ("decode failed outright: " ^ Codec.File_codec.error_message e)
  | Ok (decoded_arranged, stats) ->
      let failed =
        Array.fold_left (fun a u -> a + List.length u.Codec.Matrix_codec.failed_codewords) 0
          stats.Codec.File_codec.units
      in
      (match Codec.Dnamapper.extract plan decoded_arranged with
      | [ msb'; lsb' ] -> (count_errors msb msb', count_errors lsb lsb', failed)
      | _ -> assert false)

let () =
  let img = synthetic_image () in
  Printf.printf "image: %dx%d = %d bytes; tiers: high nibbles / low nibbles\n" image_side
    image_side (Bytes.length img);
  Printf.printf "channel: wetlab (5%% base error, bursty), coverage 10, parity %d, DBMA recon\n\n"
    params.Codec.Params.rs_parity;
  (* Paired trials: the same seed drives both arms, so each pair of runs
     sees the identical wetlab noise and the only difference is the
     byte-to-row mapping. *)
  let trials = 6 in
  let tally mapped =
    let hi = ref 0 and lo = ref 0 and failed = ref 0 in
    for t = 1 to trials do
      let h, l, f = run_trial (Dna.Rng.create (1000 + t)) ~mapped img in
      hi := !hi + h;
      lo := !lo + l;
      failed := !failed + f
    done;
    (!hi, !lo, !failed)
  in
  let m_hi, m_lo, m_failed = tally true in
  let n_hi, n_lo, n_failed = tally false in
  Printf.printf "%-22s %14s %14s %14s\n" "" "hi-tier errors" "lo-tier errors" "failed codewords";
  Printf.printf "%-22s %14d %14d %14d\n" "DNAMapper" m_hi m_lo m_failed;
  Printf.printf "%-22s %14d %14d %14d\n" "naive arrangement" n_hi n_lo n_failed;
  print_newline ();
  if m_failed = 0 && n_failed = 0 then
    print_endline "(no codewords failed this run: error correction absorbed everything)"
  else begin
    Printf.printf
      "DNAMapper pushed corruption into the low tier: hi-tier errors %d vs %d naive.\n" m_hi n_hi;
    if m_hi <= n_hi then print_endline "quality-critical data survived better: OK"
  end
