(* Rateless storage with the DNA Fountain codec.

   Run with: dune exec examples/fountain_storage.exe

   The matrix architecture must know *which* molecules were lost
   (erasure positions). The fountain codec doesn't care: any
   sufficiently large subset of droplets decodes the file, so molecule
   dropout, failed reconstructions and corrupt droplets all just shrink
   the usable set. This example pushes droplets through the full noisy
   path — synthesis-style dropout, sequencing noise, clustering,
   reconstruction — and decodes from whatever survives. *)

let () =
  let rng = Dna.Rng.create 404 in
  let file =
    Bytes.of_string
      (String.concat " "
         (List.init 40 (fun i -> Printf.sprintf "droplet-%d spills no secrets alone;" i)))
  in
  Printf.printf "file: %d bytes\n" (Bytes.length file);

  (* Encode into droplets (each XORs a seed-determined chunk subset). *)
  let enc = Codec.Fountain.encode rng file in
  let droplets = enc.Codec.Fountain.strands in
  Printf.printf "fountain: k=%d chunks -> %d droplets of %d nt\n" enc.Codec.Fountain.k
    (Array.length droplets)
    (Codec.Fountain.strand_nt enc.Codec.Fountain.params);

  (* Wetlab: 10%% of molecules never synthesize; the rest are sequenced
     at coverage 8 through the i.i.d. channel. *)
  let sequencing =
    {
      (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 8)) with
      Simulator.Sequencer.dropout = 0.10;
    }
  in
  let channel = Simulator.Iid_channel.create_rate ~error_rate:0.06 in
  let reads = Simulator.Sequencer.sequence sequencing channel rng droplets in
  Printf.printf "sequenced %d reads (10%% molecule dropout)\n" (Array.length reads);

  (* Cluster and reconstruct as usual. *)
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  let clusters = Dnastore.Pipeline.cluster_default () rng read_strands in
  let target_len = Codec.Fountain.strand_nt enc.Codec.Fountain.params in
  let consensus =
    List.filter_map
      (fun c ->
        if c = [] then None
        else Some (Reconstruction.Nw_consensus.reconstruct ~target_len (Array.of_list c)))
      clusters
  in
  Printf.printf "reconstructed %d droplet candidates\n" (List.length consensus);

  (* Rateless decode: no erasure positions, just whatever survived. *)
  match Codec.Fountain.decode ~k:enc.Codec.Fountain.k ~file_bytes:enc.file_bytes consensus with
  | Ok (bytes, stats) ->
      Printf.printf "decoded from %d droplets (%d rejected by seed checksum, %d peeled)\n"
        stats.Codec.Fountain.droplets_used stats.droplets_bad stats.peeled;
      assert (Bytes.equal bytes file);
      print_endline "fountain round trip: EXACT"
  | Error e ->
      Printf.eprintf "decode failed: %s\n" e;
      exit 1
