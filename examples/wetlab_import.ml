(* Handling wetlab data (Section VIII).

   Run with: dune exec examples/wetlab_import.exe

   Instead of feeding simulator output straight into clustering, this
   example takes the detour a real experiment takes: reads are exported
   as a FASTQ file (as a sequencer would produce, in both orientations),
   then ingested back — parsing, primer-pair identification, 3'->5'
   orientation fixing, primer stripping — and only then decoded. The
   FASTQ file can equally come from a real Illumina/Nanopore run. *)

let () =
  let rng = Dna.Rng.create 77 in
  let file = Bytes.of_string "Wetlab data replaces the simulation module seamlessly." in

  (* Encode and tag with primers, as for real synthesis. *)
  let params = Codec.Params.default in
  let pair = (Codec.Primer.generate_pairs_exn rng 1).(0) in
  let encoded = Codec.File_codec.encode ~params file in
  let tagged = Array.map (Codec.Primer.attach pair) encoded.Codec.File_codec.strands in
  Printf.printf "synthesized %d primer-tagged molecules of %d nt\n" (Array.length tagged)
    (Dna.Strand.length tagged.(0));

  (* "Sequence": noisy reads, half of them in reverse orientation. *)
  let channel = Simulator.Iid_channel.create_rate ~error_rate:0.05 in
  let sequencing =
    {
      (Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 10)) with
      Simulator.Sequencer.p_reverse = 0.5;
    }
  in
  let reads = Simulator.Sequencer.sequence sequencing channel rng tagged in
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in

  (* Export to FASTQ — the sequencer's output format. *)
  let path = Filename.temp_file "dnastore_run" ".fastq" in
  Dnastore.Wetlab_io.export_fastq_file path read_strands;
  Printf.printf "exported %d reads to %s\n" (Array.length read_strands) path;

  (* Ingest: parse, identify the primer pair, fix orientation, strip. *)
  let ingested = Dnastore.Wetlab_io.ingest_file [ pair ] path in
  let stats = ingested.Dnastore.Wetlab_io.stats in
  Printf.printf
    "ingested: %d records (%d parse errors), %d forward + %d reverse oriented, %d unmatched\n"
    stats.Dnastore.Wetlab_io.total_records stats.parse_errors stats.forward stats.reverse
    stats.no_primer_match;
  let cores =
    match ingested.Dnastore.Wetlab_io.by_pair with
    | [ (_, cores) ] -> cores
    | _ -> failwith "expected exactly one primer group"
  in

  (* The rest of the pipeline is unchanged: cluster, reconstruct, decode. *)
  let clusters = Dnastore.Pipeline.cluster_default () rng cores in
  let target_len = Codec.Params.strand_nt params in
  let consensus =
    List.filter_map
      (fun c ->
        if c = [] then None
        else Some (Reconstruction.Nw_consensus.reconstruct ~target_len (Array.of_list c)))
      clusters
  in
  (match
     Codec.File_codec.decode ~params ~n_units:encoded.Codec.File_codec.n_units consensus
   with
  | Ok (bytes, _) ->
      Printf.printf "decoded: %S\n" (Bytes.to_string bytes);
      assert (Bytes.equal bytes file);
      print_endline "wetlab import round trip: EXACT"
  | Error e ->
      Printf.eprintf "decode failed: %s\n" (Codec.File_codec.error_message e);
      exit 1);
  Sys.remove path
