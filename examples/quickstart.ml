(* Quickstart: take a message through the entire DNA storage pipeline.

   Run with: dune exec examples/quickstart.exe

   The five stages mirror Figure 1 of the paper: encode -> simulate the
   wetlab -> cluster the noisy reads -> reconstruct each cluster ->
   decode with error correction. *)

let message =
  "DNA as a storage medium offers extreme density and durability: \
   this very sentence survived synthesis, storage, sequencing, \
   clustering, trace reconstruction and Reed-Solomon decoding."

let () =
  let rng = Dna.Rng.create 2024 in
  let file = Bytes.of_string message in

  (* 1. Encode: file -> DNA strands (index + payload columns of the
     Reed-Solomon matrix unit). The wetlab channel below is harsh
     (~12% per-base error with bursts), so spend a little more on
     parity, as a real deployment facing Nanopore noise would. *)
  let params = { Codec.Params.default with Codec.Params.rs_parity = 8 } in
  let encoded = Codec.File_codec.encode ~params file in
  let strands = encoded.Codec.File_codec.strands in
  Printf.printf "1. encoded %d bytes into %d strands of %d nt each\n" (Bytes.length file)
    (Array.length strands)
    (Codec.Params.strand_nt params);
  Printf.printf "   first strand: %s...\n"
    (String.sub (Dna.Strand.to_string strands.(0)) 0 48);

  (* 2. Simulate the wetlab: synthesis + storage + sequencing noise at
     coverage 30, through the position-dependent bursty channel. *)
  let channel = Simulator.Wetlab_channel.create () in
  let sequencing =
    Simulator.Sequencer.default_params ~coverage:(Simulator.Sequencer.Fixed 30)
  in
  let reads = Simulator.Sequencer.sequence sequencing channel rng strands in
  Printf.printf "2. sequenced %d noisy reads through the '%s' channel\n" (Array.length reads)
    (Simulator.Channel.name channel);

  (* 3. Cluster the reads by similarity; thresholds auto-configured. *)
  let read_strands = Array.map (fun r -> r.Simulator.Sequencer.seq) reads in
  let clusters = Dnastore.Pipeline.cluster_default () rng read_strands in
  Printf.printf "3. clustered into %d clusters (expected %d)\n" (List.length clusters)
    (Array.length strands);

  (* 4. Trace reconstruction: one consensus strand per cluster, using the
     Needleman-Wunsch / partial-order-alignment algorithm. *)
  let target_len = Codec.Params.strand_nt params in
  let consensus =
    List.filter_map
      (fun cluster ->
        match cluster with
        | [] -> None
        | reads -> Some (Reconstruction.Nw_consensus.reconstruct ~target_len (Array.of_list reads)))
      clusters
  in
  Printf.printf "4. reconstructed %d consensus strands\n" (List.length consensus);

  (* 5. Decode: indices order the columns, Reed-Solomon fixes the rest. *)
  match Codec.File_codec.decode ~params ~n_units:encoded.Codec.File_codec.n_units consensus with
  | Ok (bytes, stats) ->
      Printf.printf "5. decoded %d bytes (%d molecules missing, %d RS codewords failed)\n"
        (Bytes.length bytes)
        stats.Codec.File_codec.missing_strands
        (Array.fold_left
           (fun a u -> a + List.length u.Codec.Matrix_codec.failed_codewords)
           0 stats.Codec.File_codec.units);
      print_newline ();
      print_endline (Bytes.to_string bytes);
      assert (Bytes.equal bytes file);
      print_endline "\nround trip: EXACT"
  | Error e ->
      Printf.eprintf "decode failed: %s\n" (Codec.File_codec.error_message e);
      exit 1
