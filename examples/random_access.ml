(* Random access: the key-value store architecture (Section II-F).

   Run with: dune exec examples/random_access.exe

   Three files share one DNA pool, each tagged with its own PCR primer
   pair. Retrieving a key runs the random-access path: PCR selection by
   primers, sequencing (reads arrive in both orientations), orientation
   normalization, primer stripping, clustering, reconstruction and
   decoding — without touching the other files' molecules. *)

let files =
  [
    ("paper.txt", "DNA Storage Toolkit: a modular end-to-end DNA data storage codec and simulator.");
    ("shopping.txt", "oligos, polymerase, buffer, two Eppendorf racks, and more coffee");
    ( "quote.txt",
      "The key-value store: a pair of primers is the key; the payloads of all molecules \
       tagged with that pair are the value." );
  ]

let () =
  let store = Dnastore.Kv_store.create ~seed:7 in
  List.iter
    (fun (key, content) -> Dnastore.Kv_store.put_exn store ~key (Bytes.of_string content))
    files;
  Printf.printf "pool holds %d molecules for %d files: %s\n\n"
    (Dnastore.Kv_store.pool_size store)
    (List.length (Dnastore.Kv_store.keys store))
    (String.concat ", " (Dnastore.Kv_store.keys store));

  (* Random access each file, including one twice to show reads are
     regenerated (fresh PCR + sequencing run each time). *)
  List.iter
    (fun key ->
      match Dnastore.Kv_store.get store ~key with
      | Ok (bytes, timings) ->
          Printf.printf "get %-14s -> %S\n" key (Bytes.to_string bytes);
          Printf.printf "   (sequence %.2fs, cluster %.2fs, reconstruct %.2fs, decode %.2fs)\n"
            timings.Dnastore.Pipeline.simulate_s timings.cluster_s timings.reconstruct_s
            timings.decode_s;
          let expected = List.assoc key files in
          assert (String.equal (Bytes.to_string bytes) expected)
      | Error Dnastore.Kv_store.Key_not_found -> Printf.printf "get %s -> not found\n" key
      | Error (Decode_failed e) ->
          Printf.eprintf "get %s -> decode failed: %s\n" key e;
          exit 1)
    (List.map fst files @ [ "quote.txt" ]);

  (match Dnastore.Kv_store.get store ~key:"missing.txt" with
  | Error Dnastore.Kv_store.Key_not_found -> print_endline "\nget missing.txt -> Key_not_found (as expected)"
  | Ok _ | Error (Decode_failed _) -> assert false);
  print_endline "random access: ALL EXACT"
